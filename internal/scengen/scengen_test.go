package scengen

import (
	"context"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// testFamily returns a fresh 3×2×2 family declaration whose cells carry
// their identity in the config, so config bytes distinguish cells.
func testFamily(name string) *Family {
	type cfg struct {
		N    int
		F    float64
		S    string
		Seed int64
	}
	return &Family{
		Name:     name,
		Describe: "unit-test grid",
		Seed:     42,
		Axes: []Axis{
			{Name: "n", Points: []Point{{Label: "n1", Value: 1}, {Label: "n2", Value: 2}, {Label: "n3", Value: 3}}},
			{Name: "f", Points: []Point{{Label: "flo", Value: 0.5}, {Label: "fhi", Value: 2.5}}},
			{Name: "s", Points: []Point{{Label: "sa", Value: "a"}, {Label: "sb", Value: "b"}}},
		},
		New: Build(Spec[cfg]{
			Config: func(c Cell) cfg {
				return cfg{N: c.Int("n"), F: c.Float("f"), S: c.Str("s"), Seed: c.Seed}
			},
			Run: func(ctx context.Context, env *scenario.Env, cell Cell, c cfg) (*scenario.Report, error) {
				rep := &scenario.Report{}
				rep.Metric("n", float64(c.N))
				return rep, nil
			},
		}),
	}
}

func TestCellsNamesAndOrder(t *testing.T) {
	f := testFamily("unitgrid")
	cells, err := f.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 || f.Size() != 12 {
		t.Fatalf("3×2×2 grid expanded to %d cells (Size=%d), want 12", len(cells), f.Size())
	}
	seen := make(map[string]bool)
	seeds := make(map[int64]string)
	for i, c := range cells {
		if i > 0 && !(cells[i-1].Name < c.Name) {
			t.Errorf("cells out of order: %q before %q", cells[i-1].Name, c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate cell name %q", c.Name)
		}
		seen[c.Name] = true
		parts := strings.Split(c.Name, "/")
		if len(parts) != 4 || parts[0] != "unitgrid" {
			t.Errorf("cell name %q is not family/label1/label2/label3", c.Name)
		}
		if c.Seed != CellSeed(f.Seed, c.Index) {
			t.Errorf("cell %s seed %d does not match CellSeed(%d, %d)", c.Name, c.Seed, f.Seed, c.Index)
		}
		if prev, dup := seeds[c.Seed]; dup {
			t.Errorf("cells %s and %s share seed %d", prev, c.Name, c.Seed)
		}
		seeds[c.Seed] = c.Name
	}
	// Seeds are a function of (family seed, grid index) only — byte-level
	// reproducibility of a second expansion.
	again, err := testFamily("unitgrid").Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Name != again[i].Name || cells[i].Seed != again[i].Seed || cells[i].Index != again[i].Index {
			t.Fatalf("re-expansion diverged at %d: %+v vs %+v", i, cells[i], again[i])
		}
	}
}

func TestCellSeedDistinctAcrossFamilies(t *testing.T) {
	a, b := CellSeed(1, 0), CellSeed(2, 0)
	if a == b {
		t.Fatal("different family seeds produced the same cell seed")
	}
	if CellSeed(1, 0) == CellSeed(1, 1) {
		t.Fatal("adjacent grid indices produced the same cell seed")
	}
}

func TestValidateRejectsBadGrids(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*Family)
	}{
		{"empty name", func(f *Family) { f.Name = "" }},
		{"slash in family name", func(f *Family) { f.Name = "a/b" }},
		{"no axes", func(f *Family) { f.Axes = nil }},
		{"nil constructor", func(f *Family) { f.New = nil }},
		{"unnamed axis", func(f *Family) { f.Axes[0].Name = "" }},
		{"duplicate axis", func(f *Family) { f.Axes[1].Name = f.Axes[0].Name }},
		{"empty axis", func(f *Family) { f.Axes[0].Points = nil }},
		{"empty label", func(f *Family) { f.Axes[0].Points[0].Label = "" }},
		{"slash in label", func(f *Family) { f.Axes[0].Points[0].Label = "a/b" }},
		{"duplicate label", func(f *Family) { f.Axes[0].Points[1].Label = f.Axes[0].Points[0].Label }},
	}
	for _, tc := range cases {
		f := testFamily("badgrid")
		tc.mutate(f)
		if _, err := f.Cells(); err == nil {
			t.Errorf("%s: Cells() accepted an invalid grid", tc.label)
		}
		if err := Register(f); err == nil {
			t.Errorf("%s: Register accepted an invalid grid", tc.label)
		}
	}
}

func TestRegisterRejectsDuplicateAndMisnamed(t *testing.T) {
	f := testFamily("reggrid")
	if err := Register(f); err != nil {
		t.Fatal(err)
	}
	if err := Register(testFamily("reggrid")); err == nil {
		t.Fatal("duplicate family registration accepted")
	}
	// A constructor whose scenario misreports its name must be rejected.
	bad := testFamily("misnamed")
	orig := bad.New
	bad.New = func(c Cell) scenario.Scenario {
		c.Name = "wrong/" + c.Name
		return orig(c)
	}
	if err := Register(bad); err == nil {
		t.Fatal("misnamed cell scenario accepted")
	}

	members, err := Expand("reggrid")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 12 {
		t.Fatalf("Expand returned %d members, want 12", len(members))
	}
	for _, name := range members {
		if _, err := scenario.Lookup(name); err != nil {
			t.Errorf("member %q not in the scenario registry: %v", name, err)
		}
		fam, ok := FamilyOf(name)
		if !ok || fam != "reggrid" {
			t.Errorf("FamilyOf(%q) = %q, %v; want reggrid, true", name, fam, ok)
		}
	}
	if _, ok := FamilyOf("plainscenario"); ok {
		t.Error("FamilyOf claimed a slash-free name belongs to a family")
	}
	if _, ok := FamilyOf("nosuchfamily/cell"); ok {
		t.Error("FamilyOf claimed an unregistered prefix belongs to a family")
	}
	if _, err := Expand("nosuchfamily"); err == nil {
		t.Error("Expand accepted an unknown family")
	}
}

func TestTypedAccessorsPanicOnMisuse(t *testing.T) {
	cells, err := testFamily("accessors").Cells()
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if got := c.Float("n"); got != float64(c.Int("n")) {
		t.Errorf("Float on an int axis = %v, want %v", got, c.Int("n"))
	}
	for label, fn := range map[string]func(){
		"missing axis":  func() { c.Int("nosuch") },
		"int on string": func() { c.Int("s") },
		"str on int":    func() { c.Str("n") },
		"float on str":  func() { c.Float("s") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", label)
				}
			}()
			fn()
		}()
	}
}

func TestBuildExecutesThroughScenarioAPI(t *testing.T) {
	f := testFamily("execgrid")
	if err := Register(f); err != nil {
		t.Fatal(err)
	}
	members, err := Expand("execgrid")
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Lookup(members[0])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.Execute(context.Background(), &scenario.Env{}, s, s.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Metrics["n"]; !ok {
		t.Fatalf("executed cell report lacks metric n: %+v", rep.Metrics)
	}
	// A wrongly typed config must error, not run.
	if _, err := s.Run(context.Background(), &scenario.Env{}, struct{}{}); err == nil {
		t.Fatal("cell scenario ran with a config of the wrong type")
	}
	if s.Describe() == "" {
		t.Fatal("cell scenario has an empty description")
	}
}

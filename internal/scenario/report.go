package scenario

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Report is the uniform result envelope every scenario emits. The typed
// metric map is the machine-readable trajectory (what CI benches graph
// over time); Payload carries the scenario's full artifact for callers
// that know the concrete type.
//
// JSON marshaling is stable: encoding/json sorts the metric keys, so two
// runs with identical measurements produce byte-identical documents.
type Report struct {
	// Scenario is the registered name; Execute stamps it.
	Scenario string `json:"scenario"`
	// WallSeconds is the wall-clock run time; Execute stamps it.
	WallSeconds float64 `json:"wall_seconds"`
	// EmulatedSeconds is time elapsed on the emulated clock, when the
	// scenario drives an emulator (0 otherwise).
	EmulatedSeconds float64 `json:"emulated_seconds,omitempty"`
	// Metrics is the scenario's scalar summary (mean RTT, carried Mbps,
	// forwarding decisions/sec, ...).
	Metrics map[string]float64 `json:"metrics"`
	// Payload is the scenario-specific artifact (the full sample series,
	// placements, per-route accounting, ...). May be nil.
	Payload any `json:"payload,omitempty"`
}

// Metric records one scalar, creating the map on first use.
func (r *Report) Metric(name string, value float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = value
}

// MetricNames returns the metric keys in sorted (JSON) order.
func (r *Report) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteCSV renders reports as long-form CSV (scenario,metric,value) — the
// shape spreadsheet pivots and plotting scripts want. Envelope durations
// are emitted as pseudo-metrics so a row set is self-contained.
func WriteCSV(w io.Writer, reports ...*Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "metric", "value"}); err != nil {
		return err
	}
	row := func(scenario, metric string, value float64) error {
		return cw.Write([]string{scenario, metric, strconv.FormatFloat(value, 'g', -1, 64)})
	}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if err := row(r.Scenario, "wall_seconds", r.WallSeconds); err != nil {
			return err
		}
		if r.EmulatedSeconds != 0 {
			if err := row(r.Scenario, "emulated_seconds", r.EmulatedSeconds); err != nil {
				return err
			}
		}
		for _, name := range r.MetricNames() {
			if err := row(r.Scenario, name, r.Metrics[name]); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("scenario: writing CSV: %w", err)
	}
	return nil
}

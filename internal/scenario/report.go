package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Report is the uniform result envelope every scenario emits. The typed
// metric map is the machine-readable trajectory (what CI benches graph
// over time); Payload carries the scenario's full artifact for callers
// that know the concrete type.
//
// JSON marshaling is stable: encoding/json sorts the metric keys, so two
// runs with identical measurements produce byte-identical documents.
type Report struct {
	// Scenario is the registered name; Execute stamps it.
	Scenario string `json:"scenario"`
	// WallSeconds is the wall-clock run time; Execute stamps it.
	WallSeconds float64 `json:"wall_seconds"`
	// EmulatedSeconds is time elapsed on the emulated clock, when the
	// scenario drives an emulator (0 otherwise).
	EmulatedSeconds float64 `json:"emulated_seconds,omitempty"`
	// Metrics is the scenario's scalar summary (mean RTT, carried Mbps,
	// forwarding decisions/sec, ...).
	Metrics map[string]float64 `json:"metrics"`
	// Payload is the scenario-specific artifact (the full sample series,
	// placements, per-route accounting, ...). May be nil.
	Payload any `json:"payload,omitempty"`

	// clamped tracks the metrics whose current value was recorded
	// non-finite and had to be clamped. Execute fails the scenario when
	// any remain: a NaN clamped to 0 would otherwise read as the best
	// possible value on a lower-is-better CI gate and silently reward
	// the breakage. A later finite overwrite of the same metric clears
	// its record.
	clamped map[string]bool
}

// Metric records one scalar, creating the map on first use. Non-finite
// values are clamped to the nearest representable finite value (NaN → 0,
// ±Inf → ±MaxFloat64) so the report stays JSON-encodable, and the clamp
// is remembered: Execute turns it into an explicit scenario failure, so
// a broken computation can neither crash encoding/json nor pose as a
// legitimate (possibly gate-pleasing) measurement in a bench artifact.
// Values written straight into the Metrics map bypass the clamp and are
// rejected explicitly at marshal time instead.
func (r *Report) Metric(name string, value float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		if r.clamped == nil {
			r.clamped = make(map[string]bool)
		}
		r.clamped[name] = true
	} else {
		delete(r.clamped, name)
	}
	r.Metrics[name] = clampFinite(value)
}

// ClampedMetrics returns the sorted names of metrics whose current
// value was recorded non-finite.
func (r *Report) ClampedMetrics() []string {
	if len(r.clamped) == 0 {
		return nil
	}
	names := make([]string, 0, len(r.clamped))
	for name := range r.clamped {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// clampFinite maps non-finite values onto the finite line.
func clampFinite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// checkFinite returns a descriptive error when any metric holds a value
// JSON cannot represent — naming the scenario and metric, unlike
// encoding/json's opaque "unsupported value: NaN".
func (r *Report) checkFinite() error {
	for _, name := range r.MetricNames() {
		if v := r.Metrics[name]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario %s: metric %q is %v — not JSON-encodable (use Report.Metric, which clamps)", r.Scenario, name, v)
		}
	}
	return nil
}

// MarshalJSON guards the marshal path against non-finite metric values
// (possible only via direct Metrics map writes; Metric clamps). The
// encoded form is exactly the plain struct encoding.
func (r Report) MarshalJSON() ([]byte, error) {
	if err := r.checkFinite(); err != nil {
		return nil, err
	}
	type plain Report // drops the method set: no marshal recursion
	return json.Marshal(plain(r))
}

// MetricNames returns the metric keys in sorted (JSON) order.
func (r *Report) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteCSV renders reports as long-form CSV (scenario,metric,value) — the
// shape spreadsheet pivots and plotting scripts want. Envelope durations
// are emitted as pseudo-metrics so a row set is self-contained.
func WriteCSV(w io.Writer, reports ...*Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "metric", "value"}); err != nil {
		return err
	}
	row := func(scenario, metric string, value float64) error {
		return cw.Write([]string{scenario, metric, strconv.FormatFloat(value, 'g', -1, 64)})
	}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if err := r.checkFinite(); err != nil {
			return err
		}
		if err := row(r.Scenario, "wall_seconds", r.WallSeconds); err != nil {
			return err
		}
		if r.EmulatedSeconds != 0 {
			if err := row(r.Scenario, "emulated_seconds", r.EmulatedSeconds); err != nil {
				return err
			}
		}
		for _, name := range r.MetricNames() {
			if err := row(r.Scenario, name, r.Metrics[name]); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("scenario: writing CSV: %w", err)
	}
	return nil
}

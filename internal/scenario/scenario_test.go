package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeConfig is a round-trippable config for the fake scenario.
type fakeConfig struct {
	Reps  int     `json:"reps"`
	Label string  `json:"label"`
	Gain  float64 `json:"gain"`
}

// fake is a registry/suite test double. run may be nil (instant success).
type fake struct {
	name string
	run  func(ctx context.Context, env *Env, cfg any) (*Report, error)
}

func (f *fake) Name() string       { return f.name }
func (f *fake) Describe() string   { return "fake scenario " + f.name }
func (f *fake) DefaultConfig() any { return fakeConfig{Reps: 3, Label: "dflt", Gain: 1.5} }
func (f *fake) QuickConfig() any   { return fakeConfig{Reps: 1, Label: "quick", Gain: 1.5} }
func (f *fake) Run(ctx context.Context, env *Env, cfg any) (*Report, error) {
	if f.run != nil {
		return f.run(ctx, env, cfg)
	}
	c := cfg.(fakeConfig)
	r := &Report{}
	r.Metric("reps", float64(c.Reps))
	return r, nil
}

// register adds a uniquely named fake and returns it. The global registry
// has no Unregister by design, so tests namespace by test name.
func register(t *testing.T, suffix string, run func(context.Context, *Env, any) (*Report, error)) *fake {
	t.Helper()
	f := &fake{name: strings.ToLower(t.Name()) + "-" + suffix, run: run}
	Register(f)
	return f
}

func TestRegisterDuplicatePanics(t *testing.T) {
	f := register(t, "dup", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&fake{name: f.name})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(&fake{name: ""})
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup of unknown scenario succeeded")
	} else if !strings.Contains(err.Error(), "no-such-scenario") {
		t.Fatalf("error %q does not name the missing scenario", err)
	}
}

func TestLookupAndListSeeRegistered(t *testing.T) {
	f := register(t, "listed", nil)
	got, err := Lookup(f.name)
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("Lookup returned %v, want the registered instance", got)
	}
	found := false
	for _, s := range List() {
		if s.Name() == f.name {
			found = true
		}
	}
	if !found {
		t.Fatalf("List() does not contain %s", f.name)
	}
}

func TestDecodeConfigOverlaysDefaults(t *testing.T) {
	f := &fake{name: "decode"}
	cfg, err := DecodeConfig(f.DefaultConfig(), json.RawMessage(`{"reps": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.(fakeConfig)
	if c.Reps != 7 {
		t.Errorf("Reps = %d, want overlay 7", c.Reps)
	}
	if c.Label != "dflt" || c.Gain != 1.5 {
		t.Errorf("non-overlaid fields lost defaults: %+v", c)
	}
	if _, err := DecodeConfig(f.DefaultConfig(), json.RawMessage(`{"repz": 7}`)); err == nil {
		t.Error("unknown config field accepted")
	}
	same, err := DecodeConfig(f.DefaultConfig(), nil)
	if err != nil || same.(fakeConfig) != f.DefaultConfig().(fakeConfig) {
		t.Errorf("empty raw should return base unchanged: %v, %v", same, err)
	}
}

func TestExecuteStampsEnvelope(t *testing.T) {
	f := register(t, "stamp", nil)
	rep, err := Execute(context.Background(), nil, f, f.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != f.name {
		t.Errorf("Scenario = %q, want %q", rep.Scenario, f.name)
	}
	if rep.WallSeconds < 0 {
		t.Errorf("WallSeconds = %v", rep.WallSeconds)
	}
	if rep.Metrics["reps"] != 3 {
		t.Errorf("metrics = %v, want reps=3 from the default config", rep.Metrics)
	}
}

func TestSuiteSerialAndQuick(t *testing.T) {
	a := register(t, "a", nil)
	b := register(t, "b", nil)
	res, err := RunSuite(context.Background(), []string{a.name, b.name}, SuiteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	for _, o := range res.Outcomes {
		if o.Report.Metrics["reps"] != 1 {
			t.Errorf("%s: reps = %v, want quick config's 1", o.Scenario, o.Report.Metrics["reps"])
		}
	}
	if err := res.Err(); err != nil {
		t.Errorf("Err() = %v on all-green suite", err)
	}
}

func TestSuiteUnknownScenarioFailsPreflight(t *testing.T) {
	if _, err := RunSuite(context.Background(), []string{"nope-" + t.Name()}, SuiteOptions{}); err == nil {
		t.Fatal("suite accepted an unknown scenario name")
	}
}

func TestSuiteParallelPreservesOrder(t *testing.T) {
	var names []string
	for i := 0; i < 6; i++ {
		f := register(t, fmt.Sprintf("p%d", i), nil)
		names = append(names, f.name)
	}
	res, err := RunSuite(context.Background(), names, SuiteOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Scenario != names[i] {
			t.Errorf("outcome %d is %s, want %s", i, o.Scenario, names[i])
		}
		if o.Report == nil {
			t.Errorf("%s missing report", names[i])
		}
	}
}

func TestSuiteFailFastSkipsRemaining(t *testing.T) {
	boom := register(t, "boom", func(context.Context, *Env, any) (*Report, error) {
		return nil, errors.New("exploded")
	})
	var ran atomic.Bool
	after := register(t, "after", func(context.Context, *Env, any) (*Report, error) {
		ran.Store(true)
		return &Report{}, nil
	})
	res, err := RunSuite(context.Background(), []string{boom.name, after.name}, SuiteOptions{FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Skipped != 1 {
		t.Fatalf("failed=%d skipped=%d, want 1/1", res.Failed, res.Skipped)
	}
	if ran.Load() {
		t.Error("fail-fast still ran the scenario after the failure")
	}
	if res.Err() == nil {
		t.Error("Err() = nil on failing suite")
	}
}

func TestSuiteTimeoutAndCancellation(t *testing.T) {
	blocker := func(ctx context.Context, _ *Env, _ any) (*Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	slow := register(t, "slow", blocker)

	// Per-scenario timeout.
	start := time.Now()
	res, err := RunSuite(context.Background(), []string{slow.name}, SuiteOptions{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || !strings.Contains(res.Outcomes[0].Error, "context deadline exceeded") {
		t.Fatalf("timeout outcome: %+v", res.Outcomes[0])
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout not enforced promptly (%v)", time.Since(start))
	}

	// Whole-suite cancellation returns promptly. A separate scenario
	// signals that it is actually running, so the cancel lands mid-run by
	// construction instead of after a hopeful sleep.
	started := make(chan struct{})
	hang := register(t, "hang", func(ctx context.Context, _ *Env, _ any) (*Report, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *SuiteResult, 1)
	go func() {
		r, _ := RunSuite(ctx, []string{hang.name}, SuiteOptions{})
		done <- r
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("scenario never started")
	}
	cancel()
	select {
	case r := <-done:
		if r.Failed != 1 {
			t.Fatalf("canceled suite: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("suite did not return promptly after cancel")
	}
}

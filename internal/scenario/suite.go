package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Shard selects a deterministic 1/Count slice of a suite so one logical
// run can split across processes or CI matrix jobs. Assignment is
// round-robin over the requested scenario order (the sorted registry
// order when no names are given): scenario i goes to shard i mod Count.
// That makes the partition a function of the scenario set alone — every
// scenario lands in exactly one shard, the union over shards 0..Count-1
// is the full suite for any Count, and re-running a shard is
// reproducible. The zero value (Count ≤ 1) disables sharding.
type Shard struct {
	// Index is this process's slot, in [0, Count).
	Index int
	// Count is the total number of shards.
	Count int
}

// enabled reports whether the shard actually splits the suite.
func (sh Shard) enabled() bool { return sh.Count > 1 }

// String renders the shard in the i/n form labctl's -shard flag accepts;
// the disabled zero value reads 0/1.
func (sh Shard) String() string {
	if !sh.enabled() {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", sh.Index, sh.Count)
}

// validate rejects out-of-range shard specs.
func (sh Shard) validate() error {
	if sh.Count > 1 && (sh.Index < 0 || sh.Index >= sh.Count) {
		return fmt.Errorf("scenario: shard index %d out of range [0,%d)", sh.Index, sh.Count)
	}
	return nil
}

// ShardNames returns the slice of names assigned to the shard,
// preserving order. With sharding disabled it returns names unchanged.
func ShardNames(names []string, sh Shard) []string {
	if !sh.enabled() {
		return names
	}
	var out []string
	for i, name := range names {
		if i%sh.Count == sh.Index {
			out = append(out, name)
		}
	}
	return out
}

// SuiteOptions tunes a suite run. The zero value runs serially with no
// per-scenario timeout, default configs, and collect-all error policy.
type SuiteOptions struct {
	// Parallel is the number of scenarios in flight (≤ 1 serial).
	Parallel int
	// Timeout bounds each scenario's wall-clock run (0 = none).
	Timeout time.Duration
	// FailFast stops launching new scenarios after the first failure and
	// cancels the ones in flight; the default collects every outcome.
	FailFast bool
	// Quick selects each scenario's QuickConfig when it has one.
	Quick bool
	// Configs overlays per-scenario JSON onto the base configuration,
	// keyed by scenario name.
	Configs map[string]json.RawMessage
	// Shard restricts the run to a deterministic slice of the suite (see
	// Shard); the slice is taken after name resolution, so an explicit
	// name list shards the same way the full registry does.
	Shard Shard
	// Env is handed to every scenario (nil = silent).
	Env *Env
}

// Outcome is one scenario's slot in a suite result: exactly one of
// Report and Error is meaningful, unless the scenario never started
// (Skipped, under fail-fast).
type Outcome struct {
	Scenario string  `json:"scenario"`
	Report   *Report `json:"report,omitempty"`
	Error    string  `json:"error,omitempty"`
	Skipped  bool    `json:"skipped,omitempty"`
}

// SuiteResult aggregates a suite run. Outcomes preserve the requested
// scenario order regardless of execution interleaving.
type SuiteResult struct {
	Outcomes []Outcome `json:"outcomes"`
	Failed   int       `json:"failed"`
	Skipped  int       `json:"skipped"`
	// Quick records whether the run used quick (smoke) configurations, so
	// downstream consumers (the benchmark trajectory) never compare quick
	// numbers against full ones.
	Quick bool `json:"quick,omitempty"`
}

// Reports returns the successful reports, in order.
func (r *SuiteResult) Reports() []*Report {
	out := make([]*Report, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.Report != nil {
			out = append(out, o.Report)
		}
	}
	return out
}

// Err folds the result into a single error: nil only when every scenario
// actually ran and succeeded. Skipped scenarios (fail-fast, or a
// cancellation that landed before work started) are a failure signal too
// — a canceled suite that did no work must not read as a green pass.
func (r *SuiteResult) Err() error {
	if r.Failed == 0 && r.Skipped == 0 {
		return nil
	}
	for _, o := range r.Outcomes {
		if o.Error != "" {
			return fmt.Errorf("scenario %s: %s (%d of %d failed, %d skipped)",
				o.Scenario, o.Error, r.Failed, len(r.Outcomes), r.Skipped)
		}
	}
	return fmt.Errorf("%d of %d scenarios skipped before running", r.Skipped, len(r.Outcomes))
}

// RunSuite executes the named scenarios (nil or empty = every registered
// scenario, sorted). Name resolution and config decoding happen up front,
// so a typo fails before any scenario burns time. The returned error is
// non-nil only for such pre-flight problems or a canceled ctx before any
// work ran; per-scenario failures live in the result.
func RunSuite(ctx context.Context, names []string, opts SuiteOptions) (*SuiteResult, error) {
	if len(names) == 0 {
		names = Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("scenario: no scenarios registered")
	}
	if err := opts.Shard.validate(); err != nil {
		return nil, err
	}
	names = ShardNames(names, opts.Shard)
	if len(names) == 0 {
		// A shard count above the suite size leaves this slot legitimately
		// empty: an empty green result, not an error, so wide CI matrices
		// keep working as the suite grows and shrinks.
		return &SuiteResult{Quick: opts.Quick}, nil
	}
	type job struct {
		s   Scenario
		cfg any
	}
	jobs := make([]job, len(names))
	for i, name := range names {
		s, err := Lookup(name)
		if err != nil {
			return nil, err
		}
		cfg, err := DecodeConfig(BaseConfig(s, opts.Quick), opts.Configs[name])
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		jobs[i] = job{s: s, cfg: cfg}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// A fail-fast failure cancels runCtx, which both aborts scenarios in
	// flight and stops workers from picking up queued jobs.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &SuiteResult{Outcomes: make([]Outcome, len(jobs)), Quick: opts.Quick}
	var mu sync.Mutex
	runOne := func(i int) {
		j := jobs[i]
		sctx := runCtx
		var stop context.CancelFunc
		if opts.Timeout > 0 {
			sctx, stop = context.WithTimeout(runCtx, opts.Timeout)
			defer stop()
		}
		out := Outcome{Scenario: j.s.Name()}
		if err := runCtx.Err(); err != nil {
			out.Skipped = true
		} else {
			opts.Env.emit(Progress{Scenario: j.s.Name(), Phase: "start"})
			if rep, err := Execute(sctx, opts.Env, j.s, j.cfg); err != nil {
				out.Error = err.Error()
			} else {
				out.Report = rep
			}
		}
		switch {
		case out.Skipped:
			opts.Env.emit(Progress{Scenario: j.s.Name(), Phase: "skipped"})
		case out.Error != "":
			opts.Env.emit(Progress{Scenario: j.s.Name(), Phase: "failed", Message: out.Error})
		default:
			opts.Env.emit(Progress{Scenario: j.s.Name(), Phase: "done",
				Message: fmt.Sprintf("%.2fs wall, %d metrics", out.Report.WallSeconds, len(out.Report.Metrics))})
		}
		mu.Lock()
		res.Outcomes[i] = out
		switch {
		case out.Skipped:
			res.Skipped++
		case out.Error != "":
			res.Failed++
			if opts.FailFast {
				cancel()
			}
		}
		mu.Unlock()
	}

	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		for i := range jobs {
			runOne(i)
		}
		return res, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return res, nil
}

package scenario

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// collectProgress returns an Env whose Progress hook appends events to a
// shared slice, plus an accessor safe to call after the run.
func collectProgress(log *bytes.Buffer) (*Env, func() []Progress) {
	var mu sync.Mutex
	var events []Progress
	env := &Env{Log: log, Progress: func(ev Progress) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}}
	return env, func() []Progress {
		mu.Lock()
		defer mu.Unlock()
		return append([]Progress(nil), events...)
	}
}

func TestProgressStampedAndForwarded(t *testing.T) {
	f := register(t, "p", func(ctx context.Context, env *Env, cfg any) (*Report, error) {
		env.Phasef("warmup", "settling %d flows", 3)
		env.Logf("halfway")
		env.Phasef("heartbeat", "")
		rep := &Report{}
		rep.Metric("x", 1)
		return rep, nil
	})
	var log bytes.Buffer
	env, events := collectProgress(&log)
	if _, err := Execute(context.Background(), env, f, f.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	got := events()
	want := []Progress{
		{Scenario: f.name, Phase: "warmup", Message: "settling 3 flows"},
		{Scenario: f.name, Phase: "log", Message: "halfway"},
		{Scenario: f.name, Phase: "heartbeat"},
	}
	if len(got) != len(want) {
		t.Fatalf("events = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, line := range []string{"[warmup] settling 3 flows", "halfway", "[heartbeat]"} {
		if !strings.Contains(log.String(), line) {
			t.Errorf("log missing %q:\n%s", line, log.String())
		}
	}
}

func TestSuiteEmitsLifecycleEvents(t *testing.T) {
	ok := register(t, "ok", nil)
	bad := register(t, "bad", func(ctx context.Context, env *Env, cfg any) (*Report, error) {
		return nil, context.DeadlineExceeded
	})
	env, events := collectProgress(nil)
	res, err := RunSuite(context.Background(), []string{ok.name, bad.name}, SuiteOptions{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
	phases := map[string]string{} // scenario -> terminal phase
	starts := map[string]bool{}
	for _, ev := range events() {
		switch ev.Phase {
		case "start":
			starts[ev.Scenario] = true
		case "done", "failed", "skipped":
			phases[ev.Scenario] = ev.Phase
		}
	}
	if !starts[ok.name] || !starts[bad.name] {
		t.Errorf("missing start events: %v", starts)
	}
	if phases[ok.name] != "done" || phases[bad.name] != "failed" {
		t.Errorf("terminal phases = %v", phases)
	}
}

func TestNilEnvProgressIsSafe(t *testing.T) {
	f := register(t, "nil", func(ctx context.Context, env *Env, cfg any) (*Report, error) {
		env.Phasef("phase", "msg")
		env.Logf("line")
		return &Report{}, nil
	})
	if _, err := Execute(context.Background(), nil, f, f.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

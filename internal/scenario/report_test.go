package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Scenario:        "demo",
		WallSeconds:     0.25,
		EmulatedSeconds: 120,
		Payload:         map[string]any{"tunnel": "MIA-CHI-AMS", "samples": []any{1.0, 2.0}},
	}
	rep.Metric("mean_rtt_ms", 11.5)
	rep.Metric("post_rtt_ms", 1.2)

	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("JSON not stable across a round trip:\n%s\n%s", first, second)
	}
	if back.Metrics["mean_rtt_ms"] != 11.5 || back.Scenario != "demo" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestReportCSV(t *testing.T) {
	a := &Report{Scenario: "a", WallSeconds: 1, EmulatedSeconds: 60}
	a.Metric("z_metric", 2.5)
	a.Metric("a_metric", -1)
	b := &Report{Scenario: "b", WallSeconds: 0.5}
	b.Metric("count", 42)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"scenario,metric,value",
		"a,wall_seconds,1",
		"a,emulated_seconds,60",
		"a,a_metric,-1",
		"a,z_metric,2.5",
		"b,wall_seconds,0.5",
		"b,count,42",
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", buf.String(), want)
	}
}

package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Scenario:        "demo",
		WallSeconds:     0.25,
		EmulatedSeconds: 120,
		Payload:         map[string]any{"tunnel": "MIA-CHI-AMS", "samples": []any{1.0, 2.0}},
	}
	rep.Metric("mean_rtt_ms", 11.5)
	rep.Metric("post_rtt_ms", 1.2)

	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("JSON not stable across a round trip:\n%s\n%s", first, second)
	}
	if back.Metrics["mean_rtt_ms"] != 11.5 || back.Scenario != "demo" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestMetricClampsNonFinite(t *testing.T) {
	rep := &Report{Scenario: "demo"}
	rep.Metric("nan", math.NaN())
	rep.Metric("posinf", math.Inf(1))
	rep.Metric("neginf", math.Inf(-1))
	rep.Metric("plain", 1.5)
	if got := rep.Metrics["nan"]; got != 0 {
		t.Errorf("NaN clamped to %v, want 0", got)
	}
	if got := rep.Metrics["posinf"]; got != math.MaxFloat64 {
		t.Errorf("+Inf clamped to %v, want MaxFloat64", got)
	}
	if got := rep.Metrics["neginf"]; got != -math.MaxFloat64 {
		t.Errorf("-Inf clamped to %v, want -MaxFloat64", got)
	}
	if got := rep.Metrics["plain"]; got != 1.5 {
		t.Errorf("finite value disturbed: %v", got)
	}
	// A clamped report marshals cleanly...
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal after clamp: %v", err)
	}
	// ...but the clamps are remembered, so Execute can refuse it.
	if got := rep.ClampedMetrics(); len(got) != 3 {
		t.Errorf("ClampedMetrics = %v, want the 3 non-finite names", got)
	}
	// A finite overwrite clears the record: the final report really is
	// finite, so it must not be condemned for a corrected write.
	rep.Metric("nan", 7)
	rep.Metric("posinf", 8)
	rep.Metric("neginf", 9)
	if got := rep.ClampedMetrics(); got != nil {
		t.Errorf("ClampedMetrics after finite overwrites = %v, want none", got)
	}
}

// TestExecuteRejectsClampedMetrics: a clamped NaN must not flow into
// results, where 0 would read as the best value on a lower-is-better CI
// gate — the scenario fails explicitly instead.
func TestExecuteRejectsClampedMetrics(t *testing.T) {
	f := register(t, "nan", func(ctx context.Context, env *Env, cfg any) (*Report, error) {
		rep := &Report{}
		rep.Metric("poisoned_rmse", math.NaN())
		return rep, nil
	})
	_, err := Execute(context.Background(), nil, f, f.DefaultConfig())
	if err == nil {
		t.Fatal("Execute accepted a non-finite metric")
	}
	for _, want := range []string{f.name, "poisoned_rmse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

func TestMarshalRejectsNonFiniteExplicitly(t *testing.T) {
	rep := &Report{
		Scenario: "demo",
		// Written straight into the map, bypassing Metric's clamp.
		Metrics: map[string]float64{"poisoned_rmse": math.NaN(), "fine": 1},
	}
	_, err := json.Marshal(rep)
	if err == nil {
		t.Fatal("marshal of NaN metric succeeded, want explicit error")
	}
	for _, want := range []string{"demo", "poisoned_rmse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err == nil || !strings.Contains(err.Error(), "poisoned_rmse") {
		t.Errorf("WriteCSV error = %v, want explicit non-finite error", err)
	}
}

func TestReportCSV(t *testing.T) {
	a := &Report{Scenario: "a", WallSeconds: 1, EmulatedSeconds: 60}
	a.Metric("z_metric", 2.5)
	a.Metric("a_metric", -1)
	b := &Report{Scenario: "b", WallSeconds: 0.5}
	b.Metric("count", 42)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"scenario,metric,value",
		"a,wall_seconds,1",
		"a,emulated_seconds,60",
		"a,a_metric,-1",
		"a,z_metric,2.5",
		"b,wall_seconds,0.5",
		"b,count,42",
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", buf.String(), want)
	}
}

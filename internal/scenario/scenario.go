// Package scenario is the unified experiment API: every runnable
// evaluation of the repo — the paper's figures, the extension soaks, the
// packet-level data-plane runs — implements one small interface and
// registers itself under a stable name. On top of the registry sit a
// uniform Report envelope (stable JSON/CSV) and a Suite runner with
// per-scenario timeouts, context cancellation, serial or parallel
// execution, and deterministic sharding (Shard) that splits one logical
// suite across processes or CI matrix jobs with every scenario landing
// in exactly one shard. cmd/labctl is a thin shell over this package,
// and internal/benchstore turns Report metric envelopes into the
// BENCH_<n>.json benchmark trajectory; adding a new scenario anywhere in
// the tree is one Register call, after which the CLI, the suite, and the
// CI bench artifacts pick it up automatically.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"
)

// Scenario is one runnable experiment.
//
// DefaultConfig returns the canonical configuration value (a plain
// struct, not a pointer) — the single source every caller derives from.
// Run receives a configuration of that same dynamic type; implementations
// must honor ctx promptly (return ctx.Err() once canceled) so suite runs
// and CLI interrupts stay responsive.
type Scenario interface {
	Name() string
	Describe() string
	DefaultConfig() any
	Run(ctx context.Context, env *Env, cfg any) (*Report, error)
}

// QuickConfiger is optionally implemented by scenarios that have a
// reduced configuration for smoke runs (labctl -quick, CI).
type QuickConfiger interface {
	QuickConfig() any
}

// BaseConfig returns the scenario's quick configuration when quick is set
// and the scenario provides one, and the default configuration otherwise.
func BaseConfig(s Scenario, quick bool) any {
	if quick {
		if q, ok := s.(QuickConfiger); ok {
			return q.QuickConfig()
		}
	}
	return s.DefaultConfig()
}

// Progress is one structured progress event from a running scenario or
// the suite runner: a phase name plus an optional free-form message. It
// is how long-running scenarios report heartbeats to whoever is driving
// them — the CLI's -v stream, or a job-execution service's event buffer
// — without importing that driver.
type Progress struct {
	// Scenario is the reporting scenario's registered name. Events emitted
	// from inside a run are stamped by Execute; scenarios leave it empty.
	Scenario string `json:"scenario,omitempty"`
	// Phase names the lifecycle step: the runner emits "start", "done",
	// "failed", and "skipped"; Logf lines arrive as "log"; scenarios pick
	// their own phase names via Phasef ("warmup", "train", ...).
	Phase string `json:"phase,omitempty"`
	// Message is the human-readable detail; may be empty for a heartbeat.
	Message string `json:"message,omitempty"`
}

// Env carries the run-time surroundings a scenario may use. The zero
// value is valid: logging is discarded.
type Env struct {
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// Quick marks a smoke run; scenarios may shed optional work.
	Quick bool
	// Progress receives structured progress events; nil discards them.
	// The callback must be safe for concurrent use: a parallel suite run
	// delivers events from several scenarios at once.
	Progress func(Progress)
}

// Logf writes one progress line to the environment's log, if any, and
// forwards it to the Progress hook as a "log" event.
func (e *Env) Logf(format string, args ...any) {
	if e == nil {
		return
	}
	if e.Log != nil {
		fmt.Fprintf(e.Log, format+"\n", args...)
	}
	if e.Progress != nil {
		e.Progress(Progress{Phase: "log", Message: fmt.Sprintf(format, args...)})
	}
}

// Phasef reports entering a named phase ("warmup", "train", "drain"),
// with an optional message; an empty format sends a bare heartbeat. The
// event goes to the Progress hook and, for -v style runs, the log.
func (e *Env) Phasef(phase, format string, args ...any) {
	if e == nil {
		return
	}
	msg := ""
	if format != "" {
		msg = fmt.Sprintf(format, args...)
	}
	if e.Log != nil {
		if msg == "" {
			fmt.Fprintf(e.Log, "[%s]\n", phase)
		} else {
			fmt.Fprintf(e.Log, "[%s] %s\n", phase, msg)
		}
	}
	if e.Progress != nil {
		e.Progress(Progress{Phase: phase, Message: msg})
	}
}

// forScenario returns a copy of the environment whose Progress events are
// stamped with the scenario's name, so a shared suite-level hook can tell
// concurrent scenarios apart. A nil environment stays nil.
func (e *Env) forScenario(name string) *Env {
	if e == nil || e.Progress == nil {
		return e
	}
	c := *e
	parent := e.Progress
	c.Progress = func(ev Progress) {
		if ev.Scenario == "" {
			ev.Scenario = name
		}
		parent(ev)
	}
	return &c
}

// emit sends one event to the environment's Progress hook, if any —
// the runner-side counterpart of Phasef.
func (e *Env) emit(ev Progress) {
	if e == nil || e.Progress == nil {
		return
	}
	e.Progress(ev)
}

// DecodeConfig overlays raw JSON onto a copy of base and returns the
// merged configuration with base's dynamic type. Unknown fields are
// rejected so config-file typos surface instead of silently running the
// defaults.
func DecodeConfig(base any, raw json.RawMessage) (any, error) {
	if len(bytes.TrimSpace(raw)) == 0 {
		return base, nil
	}
	if base == nil {
		return nil, fmt.Errorf("scenario: config given for a scenario that takes none")
	}
	v := reflect.New(reflect.TypeOf(base))
	v.Elem().Set(reflect.ValueOf(base))
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v.Interface()); err != nil {
		return nil, fmt.Errorf("scenario: decoding config: %w", err)
	}
	return v.Elem().Interface(), nil
}

// Execute runs one scenario and stamps the envelope fields the scenario
// itself does not know (its registered name, the wall-clock duration).
// It is the single entry point labctl and the suite runner share.
func Execute(ctx context.Context, env *Env, s Scenario, cfg any) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := s.Run(ctx, env.forScenario(s.Name()), cfg)
	if err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("scenario %s: Run returned neither report nor error", s.Name())
	}
	// A non-finite metric is a broken computation, not a measurement:
	// the clamp kept it encodable, but letting it pass would feed the
	// benchmark trajectory a value that can read as an improvement.
	if clamped := rep.ClampedMetrics(); len(clamped) > 0 {
		return nil, fmt.Errorf("scenario %s: non-finite metric value(s) %v", s.Name(), clamped)
	}
	rep.Scenario = s.Name()
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

package scenario

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Scenario)
)

// Register adds a scenario to the global registry. It panics on an empty
// name or a duplicate registration: both are programming errors that must
// fail loudly at init time, not at lookup time.
func Register(s Scenario) {
	name := s.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Scenario, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, namesLocked())
	}
	return s, nil
}

// List returns every registered scenario, sorted by name.
func List() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, name := range namesLocked() {
		out = append(out, registry[name])
	}
	return out
}

// Names returns the sorted registered names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

// namesLocked returns the sorted names; caller holds regMu.
func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

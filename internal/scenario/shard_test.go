package scenario

import (
	"context"
	"fmt"
	"sort"
	"testing"
)

func TestShardNamesPartitionExactlyOnce(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for count := 1; count <= len(names)+2; count++ {
		seen := make(map[string]int)
		for index := 0; index < count; index++ {
			for _, n := range ShardNames(names, Shard{Index: index, Count: count}) {
				seen[n]++
			}
		}
		if len(seen) != len(names) {
			t.Fatalf("count=%d: union has %d names, want %d", count, len(seen), len(names))
		}
		for n, hits := range seen {
			if hits != 1 {
				t.Fatalf("count=%d: %q assigned %d times", count, n, hits)
			}
		}
	}
	// Disabled sharding is the identity.
	if got := ShardNames(names, Shard{}); len(got) != len(names) {
		t.Fatalf("disabled shard filtered names: %v", got)
	}
}

func TestShardString(t *testing.T) {
	if got := (Shard{Index: 2, Count: 5}).String(); got != "2/5" {
		t.Errorf("String() = %q, want 2/5", got)
	}
	if got := (Shard{}).String(); got != "0/1" {
		t.Errorf("zero-value String() = %q, want 0/1", got)
	}
}

func TestShardUnionIndependentOfShardCount(t *testing.T) {
	// The merged scenario set must be the same whatever the shard count —
	// the shard-merge determinism the CI matrix relies on.
	names := []string{"a", "b", "c", "d", "e"}
	full := append([]string(nil), names...)
	sort.Strings(full)
	for count := 1; count <= 4; count++ {
		var union []string
		for index := 0; index < count; index++ {
			union = append(union, ShardNames(names, Shard{Index: index, Count: count})...)
		}
		sort.Strings(union)
		if fmt.Sprint(union) != fmt.Sprint(full) {
			t.Fatalf("count=%d: union %v != full %v", count, union, full)
		}
	}
}

func TestRunSuiteSharded(t *testing.T) {
	var names []string
	for i := 0; i < 5; i++ {
		f := register(t, fmt.Sprintf("s%d", i), nil)
		names = append(names, f.name)
	}

	// Each shard runs its slice; the union covers every scenario once.
	ran := make(map[string]int)
	for index := 0; index < 2; index++ {
		res, err := RunSuite(context.Background(), names, SuiteOptions{
			Shard: Shard{Index: index, Count: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			ran[o.Scenario]++
		}
	}
	if len(ran) != len(names) {
		t.Fatalf("shard union ran %d scenarios, want %d: %v", len(ran), len(names), ran)
	}
	for n, hits := range ran {
		if hits != 1 {
			t.Fatalf("scenario %q ran %d times across shards", n, hits)
		}
	}

	// A shard beyond the suite size is an empty green run, not an error.
	res, err := RunSuite(context.Background(), names, SuiteOptions{
		Shard: Shard{Index: 9, Count: 10},
	})
	if err != nil || res.Err() != nil || len(res.Outcomes) != 0 {
		t.Fatalf("oversharded slot: res=%+v err=%v", res, err)
	}

	// Out-of-range shard specs fail pre-flight.
	for _, sh := range []Shard{{Index: 2, Count: 2}, {Index: -1, Count: 2}} {
		if _, err := RunSuite(context.Background(), names, SuiteOptions{Shard: sh}); err == nil {
			t.Fatalf("invalid shard %+v accepted", sh)
		}
	}
}

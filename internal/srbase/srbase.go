// Package srbase implements classic port-switching source routing, the
// baseline PolKA is compared against in the paper's background section
// (Sec. II-B): the route label is an ordered list of output ports, each hop
// pops the head of the list and forwards through that port, and the packet
// header therefore changes at every hop.
//
// The package mirrors the shape of package polka (encode a path at the
// edge, forward per hop in the core) so the two data planes can be swapped
// under the same emulator and benchmarked head to head: per-hop work,
// header bytes on the wire, and the cost of path migration.
package srbase

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrEmptyStack is returned when forwarding is attempted with no labels
// left, i.e. the packet overran its route.
var ErrEmptyStack = errors.New("srbase: label stack exhausted")

// ErrStackTooDeep is returned when encoding a route longer than the wire
// format supports.
var ErrStackTooDeep = errors.New("srbase: label stack too deep")

// maxStackDepth bounds the label stack in the wire encoding (one byte).
const maxStackDepth = 255

// LabelStack is an ordered list of output ports, outermost (first hop)
// label first. Unlike a PolKA routeID it mutates at every hop.
type LabelStack struct {
	labels []uint16
}

// NewLabelStack encodes a path as a label stack. Each port must fit in 16
// bits, which matches the port-switching schemes (MPLS-like) the paper
// contrasts with.
func NewLabelStack(ports []uint16) (*LabelStack, error) {
	if len(ports) == 0 {
		return nil, errors.New("srbase: empty path")
	}
	if len(ports) > maxStackDepth {
		return nil, fmt.Errorf("%w: %d hops", ErrStackTooDeep, len(ports))
	}
	l := make([]uint16, len(ports))
	copy(l, ports)
	return &LabelStack{labels: l}, nil
}

// Depth returns the number of labels remaining.
func (s *LabelStack) Depth() int { return len(s.labels) }

// Peek returns the outermost label without consuming it.
func (s *LabelStack) Peek() (uint16, error) {
	if len(s.labels) == 0 {
		return 0, ErrEmptyStack
	}
	return s.labels[0], nil
}

// Pop consumes and returns the outermost label: this is the per-hop
// forwarding operation of port switching. The header must be rewritten
// (label removed) at each hop — the operational cost PolKA avoids.
func (s *LabelStack) Pop() (uint16, error) {
	if len(s.labels) == 0 {
		return 0, ErrEmptyStack
	}
	head := s.labels[0]
	s.labels = s.labels[1:]
	return head, nil
}

// Clone returns an independent copy of the stack, as a core node would see
// a fresh packet of the same flow.
func (s *LabelStack) Clone() *LabelStack {
	l := make([]uint16, len(s.labels))
	copy(l, s.labels)
	return &LabelStack{labels: l}
}

// Marshal serializes the stack:
//
//	byte 0    depth N
//	bytes 1.. N big-endian uint16 labels
func (s *LabelStack) Marshal() []byte {
	out := make([]byte, 1+2*len(s.labels))
	out[0] = byte(len(s.labels))
	for i, l := range s.labels {
		binary.BigEndian.PutUint16(out[1+2*i:], l)
	}
	return out
}

// UnmarshalLabelStack parses a wire-format stack, returning it and the
// number of bytes consumed.
func UnmarshalLabelStack(b []byte) (*LabelStack, int, error) {
	if len(b) < 1 {
		return nil, 0, errors.New("srbase: truncated stack header")
	}
	n := int(b[0])
	if len(b) < 1+2*n {
		return nil, 0, fmt.Errorf("srbase: stack truncated: need %d label bytes, have %d", 2*n, len(b)-1)
	}
	labels := make([]uint16, n)
	for i := range labels {
		labels[i] = binary.BigEndian.Uint16(b[1+2*i:])
	}
	return &LabelStack{labels: labels}, 1 + 2*n, nil
}

// WireSize returns the marshalled size in bytes. Port-switching headers
// grow linearly with path length at 16 bits per hop; PolKA's routeID grows
// with the sum of nodeID degrees instead, and — crucially — keeps a single
// fixed field that core hardware never rewrites.
func (s *LabelStack) WireSize() int { return 1 + 2*len(s.labels) }

// Walk simulates forwarding a packet along its entire route, returning the
// sequence of ports taken. It consumes a clone, leaving s intact.
func (s *LabelStack) Walk() []uint16 {
	c := s.Clone()
	out := make([]uint16, 0, c.Depth())
	for c.Depth() > 0 {
		p, _ := c.Pop()
		out = append(out, p)
	}
	return out
}

package srbase

import (
	"errors"
	"reflect"
	"testing"
)

func TestPushPopOrder(t *testing.T) {
	s, err := NewLabelStack([]uint16{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{3, 1, 4, 1, 5}
	for i, w := range want {
		if got := s.Depth(); got != len(want)-i {
			t.Fatalf("Depth = %d, want %d", got, len(want)-i)
		}
		peek, err := s.Peek()
		if err != nil || peek != w {
			t.Fatalf("Peek = %d, %v; want %d", peek, err, w)
		}
		got, err := s.Pop()
		if err != nil || got != w {
			t.Fatalf("Pop %d = %d, %v; want %d", i, got, err, w)
		}
	}
	if _, err := s.Pop(); !errors.Is(err, ErrEmptyStack) {
		t.Errorf("Pop on empty = %v, want ErrEmptyStack", err)
	}
	if _, err := s.Peek(); !errors.Is(err, ErrEmptyStack) {
		t.Errorf("Peek on empty = %v, want ErrEmptyStack", err)
	}
}

func TestNewLabelStackErrors(t *testing.T) {
	if _, err := NewLabelStack(nil); err == nil {
		t.Error("empty path should fail")
	}
	long := make([]uint16, 256)
	if _, err := NewLabelStack(long); !errors.Is(err, ErrStackTooDeep) {
		t.Errorf("256 hops: got %v", err)
	}
	if _, err := NewLabelStack(make([]uint16, 255)); err != nil {
		t.Errorf("255 hops should work: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s, _ := NewLabelStack([]uint16{1, 2, 3})
	c := s.Clone()
	if _, err := c.Pop(); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 3 {
		t.Errorf("original mutated by clone pop: depth %d", s.Depth())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	ports := []uint16{0, 1, 65535, 42}
	s, _ := NewLabelStack(ports)
	wire := s.Marshal()
	if len(wire) != s.WireSize() {
		t.Fatalf("WireSize %d != marshalled %d", s.WireSize(), len(wire))
	}
	got, n, err := UnmarshalLabelStack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("consumed %d, want %d", n, len(wire))
	}
	if !reflect.DeepEqual(got.Walk(), ports) {
		t.Errorf("round trip = %v, want %v", got.Walk(), ports)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := UnmarshalLabelStack(nil); err == nil {
		t.Error("nil should fail")
	}
	if _, _, err := UnmarshalLabelStack([]byte{3, 0, 1}); err == nil {
		t.Error("truncated labels should fail")
	}
}

func TestWalkLeavesStackIntact(t *testing.T) {
	ports := []uint16{7, 8, 9}
	s, _ := NewLabelStack(ports)
	if got := s.Walk(); !reflect.DeepEqual(got, ports) {
		t.Errorf("Walk = %v, want %v", got, ports)
	}
	if s.Depth() != 3 {
		t.Errorf("Walk consumed the stack: depth %d", s.Depth())
	}
}

func TestWireSizeGrowsPerHop(t *testing.T) {
	// Header-size scaling, the comparison the paper draws against MPLS-style
	// stacks: 2 bytes per hop plus 1 byte of depth.
	for _, hops := range []int{1, 5, 20, 100} {
		s, _ := NewLabelStack(make([]uint16, hops))
		if got, want := s.WireSize(), 1+2*hops; got != want {
			t.Errorf("WireSize(%d hops) = %d, want %d", hops, got, want)
		}
	}
}

func BenchmarkPopPerHop(b *testing.B) {
	base, _ := NewLabelStack([]uint16{1, 2, 3, 4, 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := base.Clone()
		for c.Depth() > 0 {
			if _, err := c.Pop(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package freertr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/gf2"
)

// Parse reads a configuration in the text form produced by Emit. Blank
// lines and lines starting with '!' or '#' (freeRtr/IOS comment styles)
// are ignored. PBR bindings may reference ACLs and tunnels defined later
// in the file; references are resolved after the whole file is read.
func Parse(r io.Reader) (*RouterConfig, error) {
	sc := bufio.NewScanner(r)
	var cfg *RouterConfig
	type pendingPBR struct {
		acl    string
		tunnel int
		line   int
	}
	var pbrs []pendingPBR
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "hostname":
			if len(fields) != 2 {
				return nil, fmt.Errorf("freertr: line %d: hostname wants 1 argument", lineNo)
			}
			if cfg != nil {
				return nil, fmt.Errorf("freertr: line %d: duplicate hostname", lineNo)
			}
			var err error
			cfg, err = NewRouterConfig(fields[1])
			if err != nil {
				return nil, err
			}
		case "access-list":
			if cfg == nil {
				return nil, fmt.Errorf("freertr: line %d: access-list before hostname", lineNo)
			}
			// access-list NAME permit PROTO SRC DST tos TOS
			if len(fields) != 8 || fields[2] != "permit" || fields[6] != "tos" {
				return nil, fmt.Errorf("freertr: line %d: malformed access-list", lineNo)
			}
			proto, err := strconv.ParseUint(fields[3], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("freertr: line %d: protocol: %w", lineNo, err)
			}
			tos, err := strconv.ParseUint(fields[7], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("freertr: line %d: tos: %w", lineNo, err)
			}
			if err := cfg.AddAccessList(AccessList{
				Name: fields[1], Proto: uint8(proto),
				SrcNet: fields[4], DstIP: fields[5], ToS: uint8(tos),
			}); err != nil {
				return nil, fmt.Errorf("freertr: line %d: %w", lineNo, err)
			}
		case "interface":
			if cfg == nil {
				return nil, fmt.Errorf("freertr: line %d: interface before hostname", lineNo)
			}
			// interface tunnelN destination D domain-name R1 R2 ... routeid BITS
			if len(fields) < 7 || !strings.HasPrefix(fields[1], "tunnel") ||
				fields[2] != "destination" || fields[4] != "domain-name" {
				return nil, fmt.Errorf("freertr: line %d: malformed interface", lineNo)
			}
			id, err := strconv.Atoi(strings.TrimPrefix(fields[1], "tunnel"))
			if err != nil {
				return nil, fmt.Errorf("freertr: line %d: tunnel id: %w", lineNo, err)
			}
			ridIdx := -1
			for i, f := range fields {
				if f == "routeid" {
					ridIdx = i
					break
				}
			}
			if ridIdx < 0 || ridIdx != len(fields)-2 || ridIdx <= 5 {
				return nil, fmt.Errorf("freertr: line %d: malformed routeid clause", lineNo)
			}
			rid, err := gf2.ParseBits(fields[ridIdx+1])
			if err != nil {
				return nil, fmt.Errorf("freertr: line %d: %w", lineNo, err)
			}
			path := make([]string, ridIdx-5)
			copy(path, fields[5:ridIdx])
			if err := cfg.AddTunnel(Tunnel{
				ID: id, Destination: fields[3], DomainPath: path, RouteID: rid,
			}); err != nil {
				return nil, fmt.Errorf("freertr: line %d: %w", lineNo, err)
			}
		case "pbr":
			if cfg == nil {
				return nil, fmt.Errorf("freertr: line %d: pbr before hostname", lineNo)
			}
			// pbr ACL tunnel N
			if len(fields) != 4 || fields[2] != "tunnel" {
				return nil, fmt.Errorf("freertr: line %d: malformed pbr", lineNo)
			}
			id, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("freertr: line %d: pbr tunnel id: %w", lineNo, err)
			}
			pbrs = append(pbrs, pendingPBR{acl: fields[1], tunnel: id, line: lineNo})
		default:
			return nil, fmt.Errorf("freertr: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("freertr: reading config: %w", err)
	}
	if cfg == nil {
		return nil, fmt.Errorf("freertr: config has no hostname")
	}
	for _, p := range pbrs {
		if err := cfg.BindPBR(p.acl, p.tunnel); err != nil {
			return nil, fmt.Errorf("freertr: line %d: %w", p.line, err)
		}
	}
	return cfg, nil
}

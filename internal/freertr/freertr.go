// Package freertr models the edge-router configuration surface the
// framework drives: PolKA tunnels, access-control lists and policy-based
// routing (PBR), in the style of the RARE/freeRtr configuration of Fig. 10.
//
// The configuration model captures the paper's key operational property:
// the core network holds no per-flow state, so steering a flow onto a
// different path is a single PBR retarget at the ingress edge router —
// no tunnel teardown, no core reconfiguration.
//
// A freeRtr-flavoured text form is supported in both directions (Emit and
// Parse), so configurations can be inspected, diffed and replayed the way
// the testbed scripts did.
package freertr

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/gf2"
)

// AccessList matches a flow class, like the "access-list flow3" stanza of
// Fig. 10: source network, destination host, protocol and ToS.
type AccessList struct {
	// Name identifies the ACL ("flow3").
	Name string
	// SrcNet is the permitted source network in CIDR-ish notation
	// ("40.40.1.0/24").
	SrcNet string
	// DstIP is the destination host ("40.40.2.2").
	DstIP string
	// Proto is the IP protocol number (6 = TCP).
	Proto uint8
	// ToS filters packets carrying this type-of-service value.
	ToS uint8
}

// Tunnel is a provisioned PolKA tunnel: an explicit path through the
// domain plus the routeID freeRtr computes from it ("tunnel domain-name"
// in Fig. 10).
type Tunnel struct {
	// ID is the tunnel number (1-based, as in the experiments).
	ID int
	// Destination is the remote edge router's tunnel endpoint address.
	Destination string
	// DomainPath lists the router names of the explicit path, ingress
	// edge first.
	DomainPath []string
	// RouteID is the PolKA route identifier encapsulated in packets
	// entering the tunnel.
	RouteID gf2.Poly
}

// PBREntry binds an access list to a tunnel: flows matching the ACL are
// steered into the tunnel. Retargeting this binding is the framework's
// path-migration primitive.
type PBREntry struct {
	// ACL names the matching access list.
	ACL string
	// TunnelID is the tunnel the matched flows enter.
	TunnelID int
}

// RouterConfig is one edge router's configuration.
type RouterConfig struct {
	// Hostname names the router ("MIA").
	Hostname string

	acls    map[string]AccessList
	tunnels map[int]Tunnel
	pbr     map[string]int // ACL name → tunnel ID
}

// NewRouterConfig creates an empty configuration for the named router.
func NewRouterConfig(hostname string) (*RouterConfig, error) {
	if hostname == "" {
		return nil, errors.New("freertr: empty hostname")
	}
	return &RouterConfig{
		Hostname: hostname,
		acls:     make(map[string]AccessList),
		tunnels:  make(map[int]Tunnel),
		pbr:      make(map[string]int),
	}, nil
}

// AddAccessList installs an ACL; names must be unique.
func (c *RouterConfig) AddAccessList(a AccessList) error {
	if a.Name == "" {
		return errors.New("freertr: access list needs a name")
	}
	if _, dup := c.acls[a.Name]; dup {
		return fmt.Errorf("freertr: duplicate access list %q", a.Name)
	}
	c.acls[a.Name] = a
	return nil
}

// AccessListByName returns the named ACL.
func (c *RouterConfig) AccessListByName(name string) (AccessList, error) {
	a, ok := c.acls[name]
	if !ok {
		return AccessList{}, fmt.Errorf("freertr: unknown access list %q", name)
	}
	return a, nil
}

// AccessLists returns all ACLs sorted by name.
func (c *RouterConfig) AccessLists() []AccessList {
	out := make([]AccessList, 0, len(c.acls))
	for _, a := range c.acls {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddTunnel installs a tunnel; IDs must be unique and paths non-empty.
func (c *RouterConfig) AddTunnel(t Tunnel) error {
	if t.ID < 1 {
		return fmt.Errorf("freertr: tunnel ID must be ≥ 1, got %d", t.ID)
	}
	if len(t.DomainPath) == 0 {
		return fmt.Errorf("freertr: tunnel %d needs a domain path", t.ID)
	}
	if _, dup := c.tunnels[t.ID]; dup {
		return fmt.Errorf("freertr: duplicate tunnel %d", t.ID)
	}
	c.tunnels[t.ID] = t
	return nil
}

// TunnelByID returns the tunnel with the given ID.
func (c *RouterConfig) TunnelByID(id int) (Tunnel, error) {
	t, ok := c.tunnels[id]
	if !ok {
		return Tunnel{}, fmt.Errorf("freertr: unknown tunnel %d", id)
	}
	return t, nil
}

// Tunnels returns all tunnels sorted by ID.
func (c *RouterConfig) Tunnels() []Tunnel {
	out := make([]Tunnel, 0, len(c.tunnels))
	for _, t := range c.tunnels {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BindPBR points the ACL's traffic at a tunnel, creating or retargeting
// the binding. Both the ACL and the tunnel must exist. This is the single
// edge operation behind both testbed experiments' path migrations.
func (c *RouterConfig) BindPBR(aclName string, tunnelID int) error {
	if _, ok := c.acls[aclName]; !ok {
		return fmt.Errorf("freertr: unknown access list %q", aclName)
	}
	if _, ok := c.tunnels[tunnelID]; !ok {
		return fmt.Errorf("freertr: unknown tunnel %d", tunnelID)
	}
	c.pbr[aclName] = tunnelID
	return nil
}

// PBRTarget returns the tunnel an ACL is currently bound to.
func (c *RouterConfig) PBRTarget(aclName string) (int, error) {
	id, ok := c.pbr[aclName]
	if !ok {
		return 0, fmt.Errorf("freertr: access list %q has no PBR binding", aclName)
	}
	return id, nil
}

// PBREntries returns all bindings sorted by ACL name.
func (c *RouterConfig) PBREntries() []PBREntry {
	out := make([]PBREntry, 0, len(c.pbr))
	for acl, id := range c.pbr {
		out = append(out, PBREntry{ACL: acl, TunnelID: id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ACL < out[j].ACL })
	return out
}

// Emit renders the configuration in freeRtr-flavoured text, one stanza per
// object, in deterministic order:
//
//	hostname MIA
//	access-list flow3 permit 6 40.40.1.0/24 40.40.2.2 tos 8
//	interface tunnel3 destination 20.20.0.7 domain-name MIA SAO AMS routeid 1011001
//	pbr flow3 tunnel 3
func (c *RouterConfig) Emit() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n", c.Hostname)
	for _, a := range c.AccessLists() {
		fmt.Fprintf(&b, "access-list %s permit %d %s %s tos %d\n",
			a.Name, a.Proto, a.SrcNet, a.DstIP, a.ToS)
	}
	for _, t := range c.Tunnels() {
		fmt.Fprintf(&b, "interface tunnel%d destination %s domain-name %s routeid %s\n",
			t.ID, t.Destination, strings.Join(t.DomainPath, " "), t.RouteID.BitString())
	}
	for _, p := range c.PBREntries() {
		fmt.Fprintf(&b, "pbr %s tunnel %d\n", p.ACL, p.TunnelID)
	}
	return b.String()
}

package freertr

import (
	"strings"
	"testing"

	"repro/internal/gf2"
)

// fig10Config builds a configuration shaped like the paper's Fig. 10
// example: flow3 matched by ACL, tunnel 3 to AMS via an explicit path,
// PBR binding flow3 to tunnel 3.
func fig10Config(t *testing.T) *RouterConfig {
	t.Helper()
	cfg, err := NewRouterConfig("MIA")
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.AddAccessList(AccessList{
		Name: "flow3", SrcNet: "40.40.1.0/24", DstIP: "40.40.2.2", Proto: 6, ToS: 8,
	}); err != nil {
		t.Fatal(err)
	}
	for id, path := range map[int][]string{
		1: {"MIA", "SAO", "AMS"},
		2: {"MIA", "CHI", "AMS"},
		3: {"MIA", "CAL", "CHI", "AMS"},
	} {
		if err := cfg.AddTunnel(Tunnel{
			ID: id, Destination: "20.20.0.7", DomainPath: path,
			RouteID: gf2.FromUint64(uint64(0b1000000 + id)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cfg.BindPBR("flow3", 3); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestConfigBasics(t *testing.T) {
	cfg := fig10Config(t)
	a, err := cfg.AccessListByName("flow3")
	if err != nil || a.ToS != 8 || a.Proto != 6 {
		t.Errorf("ACL = %+v, %v", a, err)
	}
	tun, err := cfg.TunnelByID(3)
	if err != nil || len(tun.DomainPath) != 4 {
		t.Errorf("tunnel = %+v, %v", tun, err)
	}
	id, err := cfg.PBRTarget("flow3")
	if err != nil || id != 3 {
		t.Errorf("PBR target = %d, %v", id, err)
	}
	if got := len(cfg.Tunnels()); got != 3 {
		t.Errorf("tunnel count = %d", got)
	}
	if got := cfg.Tunnels(); got[0].ID != 1 || got[2].ID != 3 {
		t.Error("Tunnels not sorted by ID")
	}
}

func TestPBRRetargetIsTheMigrationPrimitive(t *testing.T) {
	cfg := fig10Config(t)
	// Retarget flow3 from tunnel 3 to tunnel 2 — the single edge update of
	// the experiments.
	if err := cfg.BindPBR("flow3", 2); err != nil {
		t.Fatal(err)
	}
	id, _ := cfg.PBRTarget("flow3")
	if id != 2 {
		t.Errorf("after retarget, PBR target = %d", id)
	}
	entries := cfg.PBREntries()
	if len(entries) != 1 || entries[0].TunnelID != 2 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewRouterConfig(""); err == nil {
		t.Error("empty hostname should fail")
	}
	cfg := fig10Config(t)
	if err := cfg.AddAccessList(AccessList{Name: ""}); err == nil {
		t.Error("unnamed ACL should fail")
	}
	if err := cfg.AddAccessList(AccessList{Name: "flow3"}); err == nil {
		t.Error("duplicate ACL should fail")
	}
	if err := cfg.AddTunnel(Tunnel{ID: 0, DomainPath: []string{"a"}}); err == nil {
		t.Error("tunnel ID 0 should fail")
	}
	if err := cfg.AddTunnel(Tunnel{ID: 9}); err == nil {
		t.Error("empty path should fail")
	}
	if err := cfg.AddTunnel(Tunnel{ID: 1, DomainPath: []string{"a"}}); err == nil {
		t.Error("duplicate tunnel should fail")
	}
	if err := cfg.BindPBR("nope", 1); err == nil {
		t.Error("unknown ACL should fail")
	}
	if err := cfg.BindPBR("flow3", 99); err == nil {
		t.Error("unknown tunnel should fail")
	}
	if _, err := cfg.AccessListByName("nope"); err == nil {
		t.Error("unknown ACL lookup should fail")
	}
	if _, err := cfg.TunnelByID(99); err == nil {
		t.Error("unknown tunnel lookup should fail")
	}
	if _, err := cfg.PBRTarget("nope"); err == nil {
		t.Error("unbound ACL target should fail")
	}
}

func TestEmitParseRoundTrip(t *testing.T) {
	cfg := fig10Config(t)
	text := cfg.Emit()
	for _, want := range []string{
		"hostname MIA",
		"access-list flow3 permit 6 40.40.1.0/24 40.40.2.2 tos 8",
		"domain-name MIA CAL CHI AMS",
		"pbr flow3 tunnel 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Emit missing %q in:\n%s", want, text)
		}
	}
	back, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.Emit() != text {
		t.Errorf("round trip drifted:\n--- original\n%s--- reparsed\n%s", text, back.Emit())
	}
	tun, err := back.TunnelByID(3)
	if err != nil {
		t.Fatal(err)
	}
	if !tun.RouteID.Equal(gf2.FromUint64(0b1000011)) {
		t.Errorf("routeID = %v", tun.RouteID)
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	text := `
! freeRtr style comment
# hash comment
hostname EDGE

access-list f permit 6 10.0.0.0/8 10.1.1.1 tos 4
interface tunnel1 destination 2.2.2.2 domain-name A B routeid 101
pbr f tunnel 1
`
	cfg, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname != "EDGE" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
	if id, _ := cfg.PBRTarget("f"); id != 1 {
		t.Errorf("pbr target = %d", id)
	}
}

func TestParsePBRBeforeDefinitions(t *testing.T) {
	// Forward references resolve after the file is read.
	text := `hostname E
pbr f tunnel 1
access-list f permit 6 10.0.0.0/8 10.1.1.1 tos 4
interface tunnel1 destination 2.2.2.2 domain-name A B routeid 11
`
	cfg, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := cfg.PBRTarget("f"); id != 1 {
		t.Errorf("pbr target = %d", id)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // no hostname
		"hostname a\nhostname b\n",             // duplicate hostname
		"bogus directive\n",                    // unknown directive
		"access-list f permit 6 a b tos 4\n",   // before hostname
		"hostname e\naccess-list f permit 6\n", // malformed ACL
		"hostname e\naccess-list f permit x a b tos 4\n",                        // bad proto
		"hostname e\naccess-list f permit 6 a b tos x\n",                        // bad tos
		"hostname e\ninterface tunnel1\n",                                       // malformed interface
		"hostname e\ninterface tunnelx destination d domain-name A routeid 1\n", // bad id
		"hostname e\ninterface tunnel1 destination d domain-name routeid 1\n",   // empty path
		"hostname e\ninterface tunnel1 destination d domain-name A routeid z\n", // bad bits
		"hostname e\npbr f tunnel x\n",                                          // bad pbr id
		"hostname e\npbr f tunnel 1\n",                                          // dangling pbr
		"hostname e\npbr f\n",                                                   // malformed pbr
		"hostname e\ninterface tunnel1 before hostname\n",                       // malformed interface clause
	}
	for i, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("case %d should fail:\n%s", i, text)
		}
	}
}

package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is driven through the linttest harness over fixtures
// holding at least one caught violation, at least one accepted pattern,
// and (where meaningful) a reasoned //lint:labvet-ignore suppression.

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetRand, "internal/dataplane", "notsim")
}

func TestMetricName(t *testing.T) {
	linttest.Run(t, "testdata", lint.MetricName, "metricname")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "maporder")
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxLoop, "internal/labd")
}

func TestIgnoreReason(t *testing.T) {
	linttest.Run(t, "testdata", lint.IgnoreReason, "ignorereason")
}

// TestModuleLoader smoke-tests the module-mode loader the labvet CLI
// uses: loading a real in-module package by import path must produce
// complete type information (and transitively type-check its in-module
// and standard-library imports).
func TestModuleLoader(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModPath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModPath)
	}
	pkg, err := loader.LoadImportPath("repro/internal/benchstore")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("benchstore should type-check cleanly, got: %v", pkg.TypeErrors)
	}
	if pkg.Types.Scope().Lookup("Directions") == nil {
		t.Fatal("loaded benchstore lacks Directions in scope")
	}
	diags, err := lint.Check(pkg, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("benchstore must be labvet-clean, got %d findings: %v", len(diags), diags)
	}
}

func TestAllSuiteShape(t *testing.T) {
	all := lint.All()
	if len(all) < 4 {
		t.Fatalf("suite has %d analyzers, contract requires at least 4", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"detrand", "metricname", "maporder", "ctxloop", "ignorereason"} {
		if !seen[want] {
			t.Fatalf("suite is missing analyzer %q", want)
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over maps whose bodies leak the
// (randomized) iteration order into something order-sensitive: appending
// to a slice that outlives the loop without a later sort, writing
// formatted/stream output, or setting Report metrics. This is the
// classic nondeterminism that survives -race and unit tests but breaks
// byte-identical fleet merges: two runs produce the same set in a
// different order and the zero-tolerance artifact compare fails.
//
// The accepted pattern is collect-then-sort: appending map keys (or
// values) to a slice and passing that slice to sort.* or slices.* later
// in the same function.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "map iteration order must not reach ordered output: " +
		"sort collected keys before emitting, writing, or appending into long-lived slices",
	Run: runMapOrder,
}

// orderedWriters are selector names that emit in call order; invoking
// one inside a map range leaks iteration order directly.
var orderedWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Metric": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
	return nil
}

func checkMapRanges(pass *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
			return true
		}
		checkOneRange(pass, fnBody, rs)
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkOneRange(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderedWriters[sel.Sel.Name] {
				pass.Reportf(n.Pos(), "%s call inside map iteration emits in nondeterministic order; collect and sort keys first", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[target]
				if obj == nil {
					obj = pass.TypesInfo.Defs[target]
				}
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue // loop-local slice: order stays inside one iteration
				}
				if !sortedAfter(pass, fnBody, rs, obj) {
					pass.Reportf(n.Pos(), "append to %q inside map iteration without a later sort leaks nondeterministic order; sort.* or slices.* it before use", target.Name)
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether the function body contains, after the
// range statement, a call into package sort or slices that mentions obj
// among its arguments — the collect-then-sort discharge.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch importedPath(pass.TypesInfo, sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

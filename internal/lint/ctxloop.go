package lint

import (
	"go/ast"
	"go/types"
	"unicode"
	"unicode/utf8"
)

// CtxPackages are the packages whose exported Run*/Execute* entry points
// must be cancellable: the simulation packages plus the long-running
// service layers (job execution, fleet dispatch, control plane). This
// preserves the cancellation story threaded through the stack in PR 2:
// a SIGINT to labctl must be able to unwind an arbitrarily long run.
var CtxPackages = append(append([]string{}, SimPackages...),
	"internal/labd",
	"internal/dispatch",
	"internal/controlplane",
)

// CtxLoop enforces the cancellation contract on exported Run*/Execute*
// functions and methods in CtxPackages: they must accept a
// context.Context, and any unbounded loop in their body (`for {}` or a
// range over a channel) must observe the context — directly via
// ctx.Err()/ctx.Done(), or by handing ctx to a callee each iteration.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "exported Run*/Execute* entry points in simulation and service packages " +
		"must take a context.Context and observe it inside unbounded loops",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	if !anyPathMatches(pass.Pkg.Path(), CtxPackages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !runShaped(fn.Name.Name) {
				continue
			}
			ctxParam := contextParam(pass, fn.Type.Params)
			if ctxParam == nil {
				pass.Reportf(fn.Name.Pos(), "exported %s is Run/Execute-shaped but takes no context.Context; long-running entry points must be cancellable", fn.Name.Name)
				continue
			}
			checkUnboundedLoops(pass, fn, ctxParam)
		}
	}
	return nil
}

// runShaped reports whether an exported identifier reads as a run entry
// point: "Run" or "Execute", alone or followed by a capitalized (or
// non-letter) continuation. "Runner" and "Executed" are not entry
// points.
func runShaped(name string) bool {
	for _, prefix := range []string{"Run", "Execute"} {
		rest, ok := cutPrefix(name, prefix)
		if !ok {
			continue
		}
		if rest == "" {
			return true
		}
		r, _ := utf8.DecodeRuneInString(rest)
		if !unicode.IsLower(r) {
			return true
		}
	}
	return false
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// contextParam finds the parameter of type context.Context, returning
// its declaring identifier (nil if absent). The match is syntactic —
// a selector `context.Context` whose qualifier is the context package
// (or literally named "context" when type info is incomplete) — so it
// holds even when an import failed to type-check.
func contextParam(pass *Pass, params *ast.FieldList) *ast.Ident {
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		qual, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		if p := importedPath(pass.TypesInfo, sel.X); p != "context" && !(p == "" && qual.Name == "context") {
			continue
		}
		if len(field.Names) == 0 {
			// Unnamed context parameter: present but unobservable; treat
			// the declaration as satisfying the signature half only.
			return ast.NewIdent("_")
		}
		return field.Names[0]
	}
	return nil
}

// checkUnboundedLoops reports unbounded loops in fn's body that never
// touch the context parameter.
func checkUnboundedLoops(pass *Pass, fn *ast.FuncDecl, ctxParam *ast.Ident) {
	ctxObj := pass.TypesInfo.Defs[ctxParam]
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond != nil {
				return true // bounded by its condition
			}
			body = n.Body
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Chan); !ok {
				return true // slice/map/int ranges terminate
			}
			body = n.Body
		default:
			return true
		}
		if !usesIdent(pass, body, ctxParam, ctxObj) {
			pass.Reportf(n.Pos(), "unbounded loop in %s never observes its context; check ctx.Err()/ctx.Done() (or pass ctx to the loop body) so cancellation can unwind it", fn.Name.Name)
		}
		return true
	})
}

// usesIdent reports whether body references the given parameter — by
// resolved object when type info has it, by name otherwise.
func usesIdent(pass *Pass, body *ast.BlockStmt, param *ast.Ident, obj types.Object) bool {
	if param.Name == "_" {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || used {
			return !used
		}
		if obj != nil {
			if pass.TypesInfo.Uses[id] == obj {
				used = true
			}
		} else if id.Name == param.Name {
			used = true
		}
		return !used
	})
	return used
}

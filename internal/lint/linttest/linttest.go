// Package linttest is labvet's analysistest analogue: it loads fixture
// packages from a GOPATH-style testdata/src tree, runs one analyzer
// (through the full driver, so //lint:labvet-ignore suppression is
// exercised), and compares the surviving diagnostics against want
// comments in the fixtures.
//
// Expectations are written as comments:
//
//	code() // want `regexp` `another regexp`
//
// matching diagnostics reported on that line. For diagnostics that land
// on a line that cannot carry a trailing comment (e.g. a finding on a
// directive comment itself), the form
//
//	// want-next `regexp`
//
// on the preceding line matches diagnostics on the line below it.
// Every diagnostic must be matched by an expectation and vice versa.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads each fixture import path under dir/src, applies the
// analyzer via lint.Check, and reports any mismatch between produced
// diagnostics and want expectations as test failures.
func Run(t *testing.T, dir string, a *lint.Analyzer, importPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewFixtureLoader(root)
	for _, importPath := range importPaths {
		pkg, err := loader.LoadImportPath(importPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", importPath, err)
		}
		diags, err := lint.Check(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("checking fixture %s: %v", importPath, err)
		}
		compare(t, pkg, diags)
	}
}

// expectation is one want pattern anchored to a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("^// want(-next)?((?:\\s+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))+)\\s*$")
var patRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectExpectations(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] == "-next" {
					line++
				}
				for _, q := range patRE.FindAllString(m[2], -1) {
					text := q
					if q[0] == '`' {
						text = q[1 : len(q)-1]
					} else if u, err := strconv.Unquote(q); err == nil {
						text = u
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: line, pattern: re})
				}
			}
		}
	}
	return exps
}

func compare(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	exps := collectExpectations(t, pkg)
	for _, d := range diags {
		found := false
		for _, e := range exps {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", relToSrc(e.file), e.line, e.pattern)
		}
	}
}

func relToSrc(file string) string {
	if i := strings.Index(file, fmt.Sprintf("testdata%csrc%c", filepath.Separator, filepath.Separator)); i >= 0 {
		return file[i:]
	}
	return file
}

package lint

import "strings"

// IgnoreReason polices the suppression mechanism itself: every
// //lint:labvet-ignore directive must carry a reason. A reasoned
// directive is a grep-able, reviewable waiver; a bare one is an
// invisible hole in the contract wall. Bare directives also have no
// suppression power (see Check), so this finding cannot be silenced by
// the directive it complains about.
var IgnoreReason = &Analyzer{
	Name:           "ignorereason",
	Doc:            "every //lint:labvet-ignore directive must state a reason",
	Run:            runIgnoreReason,
	Unsuppressable: true,
}

func runIgnoreReason(pass *Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				if strings.TrimSpace(rest) == "" {
					pass.Reportf(c.Pos(), "%s without a reason: state why the finding is intentional (bare directives also suppress nothing)", IgnoreDirective)
				}
			}
		}
	}
	return nil
}

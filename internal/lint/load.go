package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked compilation unit.
type Package struct {
	// Path is the import path ("repro/internal/link").
	Path string
	Fset *token.FileSet
	// Files are the parsed sources, comments attached.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-check problems. Analysis
	// proceeds on the partial information; callers may surface these
	// as warnings.
	TypeErrors []error
}

// Loader resolves and type-checks packages rooted at a directory —
// either a module root (go.mod present, imports resolved against the
// module path) or a GOPATH-style fixture tree (linttest's testdata/src,
// imports resolved as subdirectories). Standard-library imports are
// type-checked from $GOROOT source via go/importer's "source" mode, so
// the loader works with no module proxy, no export data, and no
// network. An import that cannot be resolved degrades to an empty
// placeholder package rather than aborting the load.
type Loader struct {
	Root    string // absolute directory packages are resolved under
	ModPath string // module path prefix; "" for fixture trees

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader builds a loader for the module containing dir, walking
// upward to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("labvet: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("labvet: no module line in %s/go.mod", root)
	}
	return newLoader(root, modPath), nil
}

// NewFixtureLoader builds a loader for a GOPATH-style tree (root/<import
// path>/*.go), as used by linttest fixtures.
func NewFixtureLoader(root string) *Loader {
	return newLoader(root, "")
}

func newLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor maps an import path to a directory under Root, or "" when the
// path is not ours to resolve.
func (l *Loader) dirFor(importPath string) string {
	rel := ""
	switch {
	case l.ModPath != "" && importPath == l.ModPath:
		rel = "."
	case l.ModPath != "" && strings.HasPrefix(importPath, l.ModPath+"/"):
		rel = importPath[len(l.ModPath)+1:]
	case l.ModPath == "":
		rel = importPath
	default:
		return ""
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return ""
	}
	return dir
}

// Import implements types.Importer, letting packages under load resolve
// their dependencies: in-tree paths recurse through the loader, the
// standard library is type-checked from source, and anything else
// becomes an empty placeholder so analysis can continue.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(importPath); dir != "" {
		pkg, err := l.load(importPath, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(importPath); err == nil {
		return pkg, nil
	}
	// Unresolvable import (missing dep, cgo-only std corner): a named,
	// complete-but-empty package. Uses of its symbols become type
	// errors, which the checker collects and analysis tolerates.
	ph := types.NewPackage(importPath, path.Base(importPath))
	ph.MarkComplete()
	return ph, nil
}

// LoadImportPath loads one package by import path.
func (l *Loader) LoadImportPath(importPath string) (*Package, error) {
	dir := l.dirFor(importPath)
	if dir == "" {
		return nil, fmt.Errorf("labvet: import path %s not under %s", importPath, l.Root)
	}
	return l.load(importPath, dir)
}

// LoadAll loads every package under Root, skipping testdata, vendor,
// and hidden directories. Directories with no buildable Go files are
// skipped silently.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.Root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.Root, p)
		if err != nil {
			return err
		}
		importPath := path.Join(l.ModPath, filepath.ToSlash(rel))
		pkg, err := l.load(importPath, p)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				return nil
			}
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// load parses and type-checks the package in dir, memoized by import
// path. Only non-test files participate: every labvet contract exempts
// _test.go files, and leaving them out keeps fixture and module loads
// free of test-only import tangles.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("labvet: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer func() { delete(l.loading, importPath) }()

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err // includes *build.NoGoError for empty dirs
	}
	var files []*ast.File
	for _, name := range append(append([]string{}, bp.GoFiles...), bp.CgoFiles...) {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{Path: importPath, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error when any type error occurred, but with an
	// Error handler installed it still produces a partially complete
	// package and Info — exactly what tolerant analysis wants.
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if tpkg == nil {
		tpkg = types.NewPackage(importPath, bp.Name)
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[importPath] = pkg
	return pkg, nil
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/benchstore"
)

// MetricName checks every constant string key passed to a Report metric
// setter against benchstore's exported direction table (the same table
// Diff classifies by — they cannot drift). A metric whose name matches
// neither a direction suffix nor an exact neutral name falls through to
// Neutral and silently never gates in labctl compare: the measurement
// is recorded forever but a regression in it can never fail CI.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "Report.Metric names must end in a direction suffix from " +
		"benchstore.Directions() (or be an exact benchstore.NeutralNames() entry), " +
		"so compare gates know which way is worse",
	Run: runMetricName,
}

func runMetricName(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Metric" || len(call.Args) != 2 {
				return true
			}
			if !receiverNamed(pass.TypesInfo, sel, "Report") {
				return true
			}
			name, exact, ok := stringTail(pass.TypesInfo, call.Args[0])
			if !ok {
				return true // dynamic name: not statically checkable
			}
			if exact {
				if _, known := benchstore.KnownDirection(name); known {
					return true
				}
			} else if suffixKnown(name) {
				return true
			}
			pass.Reportf(call.Args[0].Pos(), "metric %q matches no benchstore direction suffix and would be silently neutral in compare gates; use a suffix from benchstore.Directions() or add one there", name)
			return true
		})
	}
	return nil
}

// receiverNamed reports whether the selector's receiver is a (pointer
// to a) named type called name. Matching is by type name, not import
// path, so the check holds for any Report-shaped envelope (and for
// self-contained test fixtures).
func receiverNamed(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// suffixKnown reports whether a known-only-as-a-tail name fragment ends
// in one of the table's suffixes (exact neutral names can't match a
// fragment).
func suffixKnown(tail string) bool {
	for _, r := range benchstore.Directions() {
		if len(tail) >= len(r.Suffix) && tail[len(tail)-len(r.Suffix):] == r.Suffix {
			return true
		}
	}
	return false
}

// stringTail statically resolves the trailing literal portion of a
// metric-name expression:
//
//   - a constant string yields (value, exact=true)
//   - prefix + "const_tail" concatenation yields (tail, exact=false)
//   - fmt.Sprintf("...fmt", args) yields the format string
//     (exact=false) unless it ends in a verb
//
// ok=false means the name has no statically known tail and the call is
// skipped.
func stringTail(info *types.Info, e ast.Expr) (s string, exact, ok bool) {
	if tv, found := info.Types[e]; found && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true, true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		// a + b: only the right operand's tail can be the suffix.
		s, _, ok = stringTail(info, e.Y)
		return s, false, ok
	case *ast.CallExpr:
		sel, isSel := e.Fun.(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "Sprintf" || importedPath(info, sel.X) != "fmt" || len(e.Args) == 0 {
			return "", false, false
		}
		format, _, fok := stringTail(info, e.Args[0])
		if !fok || endsInVerb(format) {
			return "", false, false
		}
		return format, false, true
	}
	return "", false, false
}

// endsInVerb reports whether a format string's final characters are a
// formatting verb, making its literal suffix unknowable.
func endsInVerb(format string) bool {
	last := -1
	for i := 0; i < len(format); i++ {
		if format[i] == '%' {
			if i+1 < len(format) && format[i+1] == '%' {
				i++ // literal percent
				continue
			}
			last = i
		}
	}
	if last == -1 {
		return false
	}
	// A verb runs from last to the first alphabetic character; if that
	// consumes the rest of the string, the suffix is dynamic.
	for i := last + 1; i < len(format); i++ {
		c := format[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			return i == len(format)-1
		}
	}
	return true // unterminated verb at end
}

// Package dataplane is a detrand fixture: its import path carries the
// internal/dataplane suffix, so the determinism contract applies.
package dataplane

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time.Now reads the wall clock in a simulation package`
	time.Sleep(time.Millisecond) // want `time.Sleep blocks on real time in a simulation package`
	return time.Since(start)     // want `time.Since reads the wall clock in a simulation package`
}

func globalRand() {
	_ = rand.Intn(4)                   // want `rand.Intn draws from the global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle draws from the global math/rand source`
	_ = rand.Float64()                 // want `rand.Float64 draws from the global math/rand source`
	rand.Seed(42)                      // want `rand.Seed draws from the global math/rand source`
}

// sanctioned is the approved pattern: a *rand.Rand seeded from a config
// Seed, with every draw going through it.
func sanctioned(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	if rng.Intn(2) == 0 {
		return rng.Float64()
	}
	return rng.ExpFloat64()
}

// constants and non-call selectors on time are fine.
func notCalls() time.Duration {
	var f func() time.Time = time.Now
	_ = f
	return 5 * time.Millisecond
}

// suppressed demonstrates the waiver path: a reasoned directive on the
// finding's line keeps the run clean while staying grep-able.
func suppressed() time.Time {
	return time.Now() //lint:labvet-ignore fixture demonstrates the reasoned-suppression path
}

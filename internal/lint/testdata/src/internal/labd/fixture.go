// Package labd is a ctxloop fixture: its import path carries the
// internal/labd suffix, so the cancellation contract applies.
package labd

import "context"

func step()                       {}
func stepCtx(ctx context.Context) {}

// RunChecked observes ctx.Err inside its unbounded loop: the contract.
func RunChecked(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

// RunSelect observes ctx via a select on Done.
func RunSelect(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
			step()
		}
	}
}

// RunDelegating hands ctx to the loop body every iteration: cancellation
// is observed one call down.
func RunDelegating(ctx context.Context) {
	for {
		stepCtx(ctx)
	}
}

// RunBounded has only condition-bounded loops: nothing to check.
func RunBounded(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		step()
	}
}

func RunNoContext(cfg int) error { return nil } // want `exported RunNoContext is Run/Execute-shaped but takes no context.Context`

func ExecuteBlind(ctx context.Context) {
	for { // want `unbounded loop in ExecuteBlind never observes its context`
		step()
	}
}

func RunChannelBlind(ctx context.Context, ch chan int) {
	for range ch { // want `unbounded loop in RunChannelBlind never observes its context`
		step()
	}
}

// Runner is not Run-shaped ("Run" followed by a lowercase continuation).
func Runner(cfg int) {}

// Executed is not Execute-shaped either.
func Executed(cfg int) {}

// unexported functions are out of contract.
func runLoop() {
	for {
		step()
	}
}

func RunLegacy(cfg int) error { return nil } //lint:labvet-ignore fixture demonstrates the deprecated-wrapper waiver

// Package metricname fixtures the metric-direction contract. The local
// Report type stands in for scenario.Report: the analyzer matches metric
// setters by receiver type name.
package metricname

import "fmt"

type Report struct{ metrics map[string]float64 }

func (r *Report) Metric(name string, value float64) {}

// other.Metric must not be checked: the receiver is not a Report.
type other struct{}

func (o *other) Metric(name string, value float64) {}

func dynamicName() string { return "computed_elsewhere" }

func fill(r *Report, policy string) {
	r.Metric("aggregate_mbps", 1) // ok: _mbps is higher-is-better
	r.Metric("mean_rtt_ms", 2)    // ok: _ms is lower-is-better
	r.Metric("pkts_per_sec", 3)   // ok: _per_sec is explicitly neutral
	r.Metric("wall_seconds", 4)   // ok: exact neutral name
	r.Metric("mystery_thing", 5)  // want `metric "mystery_thing" matches no benchstore direction suffix`
	r.Metric("total_widgets", 6)  // want `metric "total_widgets" matches no benchstore direction suffix`

	r.Metric(policy+"_mean_mbps", 7) // ok: constant tail carries the suffix
	r.Metric(policy+"_widgets", 8)   // want `metric "_widgets" matches no benchstore direction suffix`

	r.Metric(fmt.Sprintf("q%d_p99_queue_ms", 16), 9) // ok: format string tail carries the suffix
	r.Metric(fmt.Sprintf("q%d_bogus", 16), 10)       // want `metric "q%d_bogus" matches no benchstore direction suffix`
	r.Metric(fmt.Sprintf("row_%d", 16), 11)          // ok: suffix is dynamic, not statically checkable

	r.Metric(dynamicName(), 12) // ok: dynamic name, not statically checkable

	o := &other{}
	o.Metric("anything_goes", 13) // ok: not a Report

	r.Metric("legacy_thing", 14) //lint:labvet-ignore pinned by a committed BENCH baseline; renaming would break the trajectory
}

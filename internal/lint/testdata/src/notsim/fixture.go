// Package notsim is outside the simulation package list: wall-clock and
// global rand use is not detrand's business here.
package notsim

import (
	"math/rand"
	"time"
)

func measure() (time.Duration, int) {
	start := time.Now()
	n := rand.Intn(10)
	return time.Since(start), n
}

// Package maporder fixtures the map-iteration-order contract.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

type Report struct{}

func (r *Report) Metric(name string, value float64) {}

// collectThenSort is the sanctioned pattern: gather, then sort before
// the order can matter.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceAlsoCounts accepts the sort.Slice form too.
func sortSliceAlsoCounts(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// unsortedEscape leaks iteration order into the returned slice.
func unsortedEscape(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration without a later sort`
	}
	return keys
}

// printedOrder leaks iteration order straight into output.
func printedOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf call inside map iteration emits in nondeterministic order`
	}
}

// reportFeed leaks iteration order into a Report.
func reportFeed(r *Report, m map[string]float64) {
	for k, v := range m {
		r.Metric(k, v) // want `Metric call inside map iteration emits in nondeterministic order`
	}
}

// loopLocal keeps the slice inside one iteration: no cross-iteration
// order can leak.
func loopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		total += len(doubled)
	}
	return total
}

// aggregates are order-insensitive: nothing to flag.
func aggregates(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceRangeIsFine: only maps have randomized order.
func sliceRangeIsFine(w io.Writer, s []string) {
	for _, v := range s {
		fmt.Fprintln(w, v)
	}
}

// suppressed demonstrates the waiver path.
func suppressed(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //lint:labvet-ignore fixture demonstrates the reasoned-suppression path
	}
}

// Package ignorereason fixtures the suppression-hygiene contract.
package ignorereason

func reasoned() int {
	return 1 //lint:labvet-ignore a stated reason makes the waiver reviewable
}

func bare() int {
	// want-next `//lint:labvet-ignore without a reason`
	//lint:labvet-ignore
	return 2
}

func alsoBare() int {
	x := 3
	// want-next `//lint:labvet-ignore without a reason`
	//lint:labvet-ignore
	return x
}

// Package lint is labvet's analysis framework: a deliberately small,
// dependency-free mirror of golang.org/x/tools/go/analysis. The
// container this repo builds in has no module proxy, so the suite is
// built on go/ast + go/types alone; the Analyzer/Pass/Diagnostic shapes
// match the x/tools ones closely enough that a later migration is a
// mechanical import swap.
//
// The analyzers encode this project's unwritten reproducibility
// contracts (see ARCHITECTURE.md "Static analysis"):
//
//   - detrand: no wall clock or global math/rand in simulation packages
//   - metricname: Report metric names must carry a benchstore direction
//     suffix, or they silently never gate in compare runs
//   - maporder: no map-iteration order leaking into ordered output
//   - ctxloop: exported Run*/Execute* entry points accept a
//     context.Context and unbounded loops observe it
//   - ignorereason: every //lint:labvet-ignore carries a reason
//
// Findings are suppressed by a trailing or preceding comment of the form
//
//	//lint:labvet-ignore <reason>
//
// which applies to its own source line and the line directly below it.
// The reason is mandatory: a bare directive is itself a finding
// (ignorereason), and that finding cannot be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one labvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression lists.
	Name string
	// Doc is the one-paragraph contract description shown by labvet -help.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
	// Unsuppressable analyzers ignore //lint:labvet-ignore directives —
	// used by ignorereason, which polices the directives themselves.
	Unsuppressable bool
}

// A Pass carries one package's parsed and type-checked form to one
// analyzer. Types and TypesInfo are always non-nil, but may be
// incomplete when the package (or one of its imports) failed to
// type-check; analyzers must degrade gracefully on missing type info
// rather than crash.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// IsTestFile reports whether the file holding pos is a _test.go file.
// The determinism/metric/cancellation contracts bind production code;
// test files are exempt by policy (a nondeterministic test breaks only
// itself, not a shipped artifact).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one reported finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (labvet/%s)", d.Pos, d.Message, d.Analyzer)
}

// IgnoreDirective is the comment prefix that suppresses labvet findings.
const IgnoreDirective = "//lint:labvet-ignore"

// ignoreAt describes one parsed directive occurrence.
type ignoreAt struct {
	line   int
	reason string
}

// parseIgnores extracts every //lint:labvet-ignore directive in the
// files, keyed by filename.
func parseIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreAt {
	out := make(map[string][]ignoreAt)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename], ignoreAt{
					line:   pos.Line,
					reason: strings.TrimSpace(rest),
				})
			}
		}
	}
	return out
}

// suppressedLines returns, per file, the set of lines covered by a
// reasoned directive: the directive's own line and the one below it.
func suppressedLines(ignores map[string][]ignoreAt) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for file, list := range ignores {
		lines := make(map[int]bool)
		for _, ig := range list {
			if ig.reason == "" {
				continue // bare directive: no suppression power
			}
			lines[ig.line] = true
			lines[ig.line+1] = true
		}
		out[file] = lines
	}
	return out
}

// Check runs the analyzers over one loaded package and returns the
// surviving diagnostics, sorted by position. Findings on lines covered
// by a reasoned //lint:labvet-ignore directive are dropped, except for
// Unsuppressable analyzers.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("labvet/%s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	suppressed := suppressedLines(parseIgnores(pkg.Fset, pkg.Files))
	kept := diags[:0]
	for _, d := range diags {
		if a := byName[d.Analyzer]; a != nil && !a.Unsuppressable && suppressed[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// All returns the full labvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MetricName, MapOrder, CtxLoop, IgnoreReason}
}

// importedPath resolves the package path a selector's qualifier refers
// to, e.g. "time" for time.Now. It returns "" when the identifier is
// not a package name (or type info is missing).
func importedPath(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// pathMatches reports whether pkgPath contains the path suffix pattern
// on a path-segment boundary: "internal/link" matches
// "repro/internal/link" and "repro/internal/link/sub", but not
// "repro/internal/linkage".
func pathMatches(pkgPath, pattern string) bool {
	return strings.Contains("/"+pkgPath+"/", "/"+pattern+"/")
}

// anyPathMatches reports whether pkgPath matches any pattern.
func anyPathMatches(pkgPath string, patterns []string) bool {
	for _, p := range patterns {
		if pathMatches(pkgPath, p) {
			return true
		}
	}
	return false
}

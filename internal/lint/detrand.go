package lint

import (
	"go/ast"
)

// SimPackages are the path-suffix patterns of packages where determinism
// is contractual: every run with the same config (and Seed) must produce
// byte-identical artifacts across local, remote, and fleet execution, so
// the wall clock and ambient randomness are banned outright. Seeded
// *rand.Rand values plumbed from a config Seed are the only sanctioned
// entropy source.
var SimPackages = []string{
	"internal/dataplane",
	"internal/link",
	"internal/netem",
	"internal/topo",
	"internal/scengen",
	"internal/experiments",
}

// randConstructors are the math/rand (v1 and v2) functions that build an
// explicitly seeded generator — the sanctioned pattern. Everything else
// at package level draws from the ambient, nondeterministically seeded
// global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// DetRand flags wall-clock reads (time.Now, time.Since, time.Sleep) and
// global math/rand draws inside simulation packages. A time.Now that
// sneaks into a simulation path silently breaks the byte-identical
// artifact guarantee the fleet compare gates rely on; a global rand.Intn
// decouples the run from its config Seed and kills CRN coupling.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall clock and global math/rand in simulation packages; " +
		"derive all entropy from a seeded *rand.Rand plumbed out of a config Seed",
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	if !anyPathMatches(pass.Pkg.Path(), SimPackages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPath(pass.TypesInfo, sel.X) {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since":
					pass.Reportf(call.Pos(), "time.%s reads the wall clock in a simulation package; derive timing from the virtual clock (link.Time / Engine.VirtualNow)", sel.Sel.Name)
				case "Sleep":
					pass.Reportf(call.Pos(), "time.Sleep blocks on real time in a simulation package; advance the virtual clock instead")
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source in a simulation package; use a seeded *rand.Rand plumbed from the config Seed", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

package benchstore

import (
	"sort"
	"strings"
)

// This file is the single source of truth for metric-direction naming:
// Diff classifies metrics through it, and the labvet metricname analyzer
// (internal/lint) imports the same table to reject metric names that
// would silently fall through to Neutral and never gate. Adding a suffix
// here simultaneously teaches the compare gate and the static checker.

// SuffixRule binds one metric-name suffix to the direction Diff assumes
// for metrics carrying it.
type SuffixRule struct {
	Suffix    string
	Direction Direction
}

// suffixRules is the ordered direction table. Order is the match order:
// neutral machine-dependent rates come first so "_per_s"/"_per_ms" are
// not swallowed by the lower-is-better "_s"/"_ms", and higher-is-better
// "_mbps" is not caught by the bare "_s".
var suffixRules = []SuffixRule{
	// Machine-dependent rates: meaningful on one box, noise across CI
	// runner generations. Override per metric (Options.Directions) to
	// gate them on a pinned machine.
	{"_per_sec", Neutral}, {"_per_s", Neutral}, {"_per_ms", Neutral},
	{"_mpps", Neutral},
	// Structural counts: deterministic topology/run-shape invariants
	// (hop counts) whose "better" has no sign.
	{"_hops", Neutral},
	// Throughput/quality: more is better.
	{"_mbps", HigherIsBetter}, {"_r2", HigherIsBetter},
	{"_flows", HigherIsBetter}, {"_completed", HigherIsBetter},
	{"_verified", HigherIsBetter}, {"_episodes", HigherIsBetter},
	{"delivered", HigherIsBetter}, {"completed", HigherIsBetter},
	{"verified", HigherIsBetter}, {"episodes", HigherIsBetter},
	{"_rate", HigherIsBetter},   // delivery/success fractions
	{"_ratio", HigherIsBetter},  // calibration-normalized rates: dimensionless, gate across hosts
	{"_paths", HigherIsBetter},  // verified path counts
	{"_acked", HigherIsBetter},  // acknowledged byte/packet counts
	{"_tunnel", HigherIsBetter}, // failover recovery counts
	// Cost: less is better. Bytes/allocs per op are deterministic for a
	// Go version, so they gate.
	{"_rmse", LowerIsBetter}, {"_mse", LowerIsBetter},
	{"_loss", LowerIsBetter}, {"_ms", LowerIsBetter},
	{"_s", LowerIsBetter}, {"drops", LowerIsBetter},
	{"rmse", LowerIsBetter},
	{"bytes_per_op", LowerIsBetter}, {"allocs_per_op", LowerIsBetter},
	{"_violations", LowerIsBetter}, // invariant-violation counts, gated at 0
	{"_bits", LowerIsBetter},       // encoding sizes: compactness wins
}

// neutralNames are exact metric names that never gate: envelope
// durations, wall-clock-dependent values, and structural counts that
// describe the run's shape rather than its quality.
var neutralNames = map[string]bool{
	"wall_seconds":     true,
	"emulated_seconds": true,
	"ns_per_op":        true, // go-bench time: machine-dependent
	"iterations":       true, // go-bench iteration count: benchtime-dependent
	// Structural counts stamped by scenarios for artifact self-description.
	"nodes":    true,
	"links":    true,
	"flows":    true,
	"branches": true,
	"cells":    true,
	"samples":  true,
	"states":   true,
	"models":   true,
	"hops":     true,
}

// Directions returns the ordered suffix table Diff classifies by. The
// slice is a copy; mutating it does not change Diff.
func Directions() []SuffixRule {
	out := make([]SuffixRule, len(suffixRules))
	copy(out, suffixRules)
	return out
}

// NeutralNames returns the exact metric names that are always Neutral,
// sorted. The slice is a copy.
func NeutralNames() []string {
	out := make([]string, 0, len(neutralNames))
	for name := range neutralNames {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KnownDirection resolves a metric name against the table: exact neutral
// names first, then the suffix rules in declared order. ok is false when
// nothing matches — such a metric is Neutral by fallback and will never
// gate, which is exactly the condition the metricname analyzer flags.
func KnownDirection(metric string) (d Direction, ok bool) {
	if neutralNames[metric] {
		return Neutral, true
	}
	for _, r := range suffixRules {
		if strings.HasSuffix(metric, r.Suffix) {
			return r.Direction, true
		}
	}
	return Neutral, false
}

package benchstore

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func snap(label string, add func(s *Snapshot)) *Snapshot {
	s := New(label)
	add(s)
	return s
}

func TestDirectionHeuristic(t *testing.T) {
	cases := map[string]Direction{
		"aggregate_mbps":        HigherIsBetter,
		"wifi_r2":               HigherIsBetter,
		"delivered":             HigherIsBetter,
		"polka_flows":           HigherIsBetter,
		"ecmp_completed":        HigherIsBetter,
		"pot_verified":          HigherIsBetter,
		"best_wifi_rmse":        LowerIsBetter,
		"pre_mean_rtt_ms":       LowerIsBetter,
		"outage_s":              LowerIsBetter,
		"ecmp_p95_fct_s":        LowerIsBetter,
		"drops":                 LowerIsBetter,
		"bytes_per_op":          LowerIsBetter,
		"allocs_per_op":         LowerIsBetter,
		"wall_seconds":          Neutral,
		"emulated_seconds":      Neutral,
		"pkts_per_sec":          Neutral,
		"ops_per_s":             Neutral, // custom go-bench "ops/s" rate: not lower-is-better "_s"
		"items_per_ms":          Neutral, // custom "items/ms" rate: not lower-is-better "_ms"
		"ns_per_op":             Neutral,
		"iterations":            Neutral,
		"hops":                  Neutral,
		"samples":               Neutral,
		"some_unknown_quantity": Neutral,
	}
	for metric, want := range cases {
		if got := DirectionFor(metric); got != want {
			t.Errorf("DirectionFor(%q) = %v, want %v", metric, got, want)
		}
	}
}

func TestDiffFlagsRegressionPerDirection(t *testing.T) {
	base := snap("base", func(s *Snapshot) {
		s.Add("x", "aggregate_mbps", 100) // higher is better
		s.Add("x", "mean_rtt_ms", 10)     // lower is better
	})
	cur := snap("cur", func(s *Snapshot) {
		s.Add("x", "aggregate_mbps", 80) // -20%: regression at 10%
		s.Add("x", "mean_rtt_ms", 8)     // -20%: improvement
	})
	c := Diff(base, cur, Options{})
	if c.Regressions != 1 || c.Improvements != 1 {
		t.Fatalf("regressions=%d improvements=%d, want 1/1\n%+v", c.Regressions, c.Improvements, c.Deltas)
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() = nil despite a regression")
	}
	// The same movement in the good direction must not flag.
	c = Diff(cur, base, Options{})
	if c.Regressions != 1 { // rtt 8→10 is +25%: the lower-is-better metric regresses
		t.Fatalf("reverse diff regressions=%d, want 1\n%+v", c.Regressions, c.Deltas)
	}
}

func TestDiffThresholdBoundary(t *testing.T) {
	base := snap("b", func(s *Snapshot) { s.Add("x", "aggregate_mbps", 100) })

	// Exactly at the threshold: the boundary belongs to the pass side.
	at := snap("c", func(s *Snapshot) { s.Add("x", "aggregate_mbps", 90) }) // rel = -0.10
	c := Diff(base, at, Options{Threshold: 0.10})
	if c.Regressions != 0 {
		t.Fatalf("drop exactly at threshold flagged: %+v", c.Deltas)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v at boundary", err)
	}

	// Just past it: flagged.
	past := snap("c", func(s *Snapshot) { s.Add("x", "aggregate_mbps", 89.9) })
	c = Diff(base, past, Options{Threshold: 0.10})
	if c.Regressions != 1 {
		t.Fatalf("drop past threshold not flagged: %+v", c.Deltas)
	}

	// Negative threshold means zero tolerance; zero means the default.
	c = Diff(base, at, Options{Threshold: -1})
	if c.Regressions != 1 {
		t.Fatalf("zero-tolerance threshold did not flag a 10%% drop: %+v", c.Deltas)
	}
	if got := Diff(base, at, Options{}).Threshold; got != DefaultThreshold {
		t.Fatalf("zero Threshold resolved to %v, want DefaultThreshold", got)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := snap("b", func(s *Snapshot) {
		s.Add("x", "drops", 0)          // lower is better, baseline zero
		s.Add("x", "aggregate_mbps", 0) // higher is better, baseline zero
	})

	// Unchanged zeros are ok, whatever the threshold.
	c := Diff(base, base, Options{})
	if c.Regressions != 0 || c.Improvements != 0 {
		t.Fatalf("zero->zero flagged: %+v", c.Deltas)
	}

	// Any rise from a zero drop count is a regression (rel is infinite)…
	cur := snap("c", func(s *Snapshot) {
		s.Add("x", "drops", 3)
		s.Add("x", "aggregate_mbps", 5)
	})
	c = Diff(base, cur, Options{Threshold: 0.5})
	if c.Regressions != 1 || c.Improvements != 1 {
		t.Fatalf("zero-baseline: regressions=%d improvements=%d, want 1/1\n%+v",
			c.Regressions, c.Improvements, c.Deltas)
	}
	for _, d := range c.Deltas {
		if math.IsInf(d.Rel, 0) || math.IsNaN(d.Rel) {
			t.Fatalf("Rel not JSON-safe: %+v", d)
		}
	}

	// …unless the move stays within the absolute epsilon.
	c = Diff(base, cur, Options{Threshold: 0.5, AbsEps: 5})
	if c.Regressions != 0 {
		t.Fatalf("AbsEps did not absorb the zero-baseline move: %+v", c.Deltas)
	}
}

func TestDiffMissingScenarioAndMetric(t *testing.T) {
	base := snap("b", func(s *Snapshot) {
		s.Add("kept", "aggregate_mbps", 10)
		s.Add("kept", "vanishing_metric_ms", 5)
		s.Add("gone", "aggregate_mbps", 10)
	})
	cur := snap("c", func(s *Snapshot) {
		s.Add("kept", "aggregate_mbps", 10)
		s.Add("brandnew", "aggregate_mbps", 1)
	})

	c := Diff(base, cur, Options{})
	if c.Missing != 2 { // the "gone" scenario + the vanished metric
		t.Fatalf("Missing = %d, want 2\n%+v", c.Missing, c.Deltas)
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() = nil despite missing baseline coverage")
	}
	var sawNewScenario bool
	for _, d := range c.Deltas {
		if d.Status == StatusScenarioNew && d.Scenario == "brandnew" {
			sawNewScenario = true
		}
	}
	if !sawNewScenario {
		t.Fatalf("current-only scenario not reported: %+v", c.Deltas)
	}

	// A scenario missing from the *baseline* (the new scenario) must never
	// fail the gate, and IgnoreMissing waives lost coverage entirely.
	c = Diff(base, cur, Options{IgnoreMissing: true})
	if c.Missing != 0 || c.Err() != nil {
		t.Fatalf("IgnoreMissing: Missing=%d err=%v", c.Missing, c.Err())
	}
}

func TestDiffDirectionOverrides(t *testing.T) {
	base := snap("b", func(s *Snapshot) {
		s.Add("x", "pkts_per_sec", 100)
		s.Add("y", "pkts_per_sec", 100)
	})
	cur := snap("c", func(s *Snapshot) {
		s.Add("x", "pkts_per_sec", 10)
		s.Add("y", "pkts_per_sec", 10)
	})
	// Heuristic: machine-dependent rate, neutral, never flags.
	if c := Diff(base, cur, Options{}); c.Regressions != 0 {
		t.Fatalf("neutral rate flagged: %+v", c.Deltas)
	}
	// Scenario-scoped override beats the heuristic for that scenario only.
	c := Diff(base, cur, Options{Directions: map[string]Direction{"x/pkts_per_sec": HigherIsBetter}})
	if c.Regressions != 1 {
		t.Fatalf("scenario-scoped override: regressions=%d, want 1\n%+v", c.Regressions, c.Deltas)
	}
	// Metric-wide override catches both scenarios.
	c = Diff(base, cur, Options{Directions: map[string]Direction{"pkts_per_sec": HigherIsBetter}})
	if c.Regressions != 2 {
		t.Fatalf("metric-wide override: regressions=%d, want 2\n%+v", c.Regressions, c.Deltas)
	}
}

func TestDiffQuickMismatch(t *testing.T) {
	base := snap("b", func(s *Snapshot) { s.Add("x", "aggregate_mbps", 1) })
	cur := snap("c", func(s *Snapshot) { s.Add("x", "aggregate_mbps", 1) })
	cur.Quick = true
	c := Diff(base, cur, Options{})
	if !c.QuickMismatch || c.Err() == nil {
		t.Fatalf("quick/full mismatch not fatal: mismatch=%v err=%v", c.QuickMismatch, c.Err())
	}
}

func TestComparisonRenderers(t *testing.T) {
	base := snap("BENCH_0", func(s *Snapshot) {
		s.Add("x", "aggregate_mbps", 100)
		s.Add("x", "hops", 4)
	})
	cur := snap("current", func(s *Snapshot) {
		s.Add("x", "aggregate_mbps", 50)
		s.Add("x", "hops", 4)
	})
	c := Diff(base, cur, Options{})

	var text bytes.Buffer
	c.WriteText(&text)
	for _, want := range []string{"REGRESSED", "aggregate_mbps", "1 regressed", "BENCH_0 -> current"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	var csvOut bytes.Buffer
	if err := c.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if lines[0] != "scenario,metric,base,current,rel,direction,status" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 3 { // header + 2 metrics
		t.Errorf("CSV rows = %d, want 3:\n%s", len(lines), csvOut.String())
	}
	if !strings.Contains(csvOut.String(), "x,aggregate_mbps,100,50,-0.5,higher,regressed") {
		t.Errorf("CSV missing the regression row:\n%s", csvOut.String())
	}
}

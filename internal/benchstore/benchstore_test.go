package benchstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestFromReportsCarriesEnvelopeAndMetrics(t *testing.T) {
	rep := &scenario.Report{
		Scenario:        "x",
		WallSeconds:     1.5,
		EmulatedSeconds: 30,
		Metrics:         map[string]float64{"aggregate_mbps": 12},
	}
	s := FromReports("run", rep, nil) // nil reports are skipped
	got := s.Scenarios["x"]
	if got["wall_seconds"] != 1.5 || got["emulated_seconds"] != 30 || got["aggregate_mbps"] != 12 {
		t.Fatalf("snapshot = %+v", s.Scenarios)
	}
	if s.Version != SchemaVersion || s.Label != "run" {
		t.Fatalf("envelope = %+v", s)
	}
}

func TestSaveLoadRoundTripIsStable(t *testing.T) {
	dir := t.TempDir()
	s := New("seed")
	s.Add("b", "m2", 2)
	s.Add("b", "m1", 1)
	s.Add("a", "m", 0.5)
	path := filepath.Join(dir, "BENCH_0.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Scenarios["b"]["m2"] != 2 || loaded.Label != "seed" {
		t.Fatalf("round trip lost data: %+v", loaded)
	}
	// Byte-identical re-save: the trajectory diffs cleanly under git.
	path2 := filepath.Join(dir, "again.json")
	if err := loaded.Save(path2); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if string(a) != string(b) {
		t.Fatalf("re-save not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

func TestLoadRejectsNewerSchemaAndNonSnapshots(t *testing.T) {
	dir := t.TempDir()
	newer := filepath.Join(dir, "BENCH_9.json")
	os.WriteFile(newer, []byte(`{"version": 99, "scenarios": {}}`), 0o644)
	if _, err := Load(newer); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("newer schema accepted: %v", err)
	}
	bogus := filepath.Join(dir, "bogus.json")
	os.WriteFile(bogus, []byte(`{"hello": 1}`), 0o644)
	if _, err := Load(bogus); err == nil {
		t.Fatal("non-snapshot accepted by Load")
	}
}

func TestLoadAnySniffsEveryResultShape(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Snapshot document.
	snapPath := write("BENCH_0.json", `{"version":1,"scenarios":{"x":{"m":1}}}`)
	// Suite result (labctl suite -o).
	suite := scenario.SuiteResult{Outcomes: []scenario.Outcome{{
		Scenario: "x",
		Report:   &scenario.Report{Scenario: "x", WallSeconds: 1, Metrics: map[string]float64{"m": 2}},
	}}}
	suiteJSON, _ := json.Marshal(&suite)
	suitePath := write("bench_results.json", string(suiteJSON))
	// Bare report (labctl run -o) and a report array.
	repPath := write("rep.json", `{"scenario":"x","wall_seconds":1,"metrics":{"m":3}}`)
	arrPath := write("reps.json", `[{"scenario":"x","wall_seconds":1,"metrics":{"m":4}}]`)

	for path, want := range map[string]float64{snapPath: 1, suitePath: 2, repPath: 3, arrPath: 4} {
		s, err := LoadAny(path)
		if err != nil {
			t.Fatalf("LoadAny(%s): %v", path, err)
		}
		if s.Scenarios["x"]["m"] != want {
			t.Errorf("LoadAny(%s): m = %v, want %v", path, s.Scenarios["x"]["m"], want)
		}
	}

	// A partial suite run is not a trajectory point.
	partial := scenario.SuiteResult{Failed: 1, Outcomes: []scenario.Outcome{{Scenario: "x", Error: "boom"}}}
	partialJSON, _ := json.Marshal(&partial)
	partialPath := write("partial.json", string(partialJSON))
	if _, err := LoadAny(partialPath); err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("partial suite result accepted: %v", err)
	}
	// Unrecognized documents fail loudly.
	if _, err := LoadAny(write("junk.json", `{"foo": 1}`)); err == nil {
		t.Fatal("unrecognized document accepted")
	}
}

func TestScanAppendDirNumbering(t *testing.T) {
	dir := t.TempDir()
	if latest, err := LatestPath(dir); err != nil || latest != "" {
		t.Fatalf("empty trajectory: latest=%q err=%v", latest, err)
	}
	// First append seeds BENCH_0; gaps don't confuse the numbering — the
	// next point is always max+1.
	p0, err := AppendDir(dir, New("a"))
	if err != nil || filepath.Base(p0) != "BENCH_0.json" {
		t.Fatalf("first append = %q, %v", p0, err)
	}
	os.WriteFile(filepath.Join(dir, "BENCH_7.json"), []byte(`{"version":1,"scenarios":{}}`), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte(`junk`), 0o644) // ignored: not a number
	p8, err := AppendDir(dir, New("b"))
	if err != nil || filepath.Base(p8) != "BENCH_8.json" {
		t.Fatalf("append after gap = %q, %v", p8, err)
	}
	entries, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ns []int
	for _, e := range entries {
		ns = append(ns, e.N)
	}
	if len(ns) != 3 || ns[0] != 0 || ns[1] != 7 || ns[2] != 8 {
		t.Fatalf("trajectory order = %v, want [0 7 8]", ns)
	}
	if latest, _ := LatestPath(dir); filepath.Base(latest) != "BENCH_8.json" {
		t.Fatalf("latest = %q", latest)
	}
}

func TestMergeShards(t *testing.T) {
	a := New("shard0")
	a.Add("x", "m", 1)
	b := New("shard1")
	b.Add("y", "m", 2)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Scenarios["x"]["m"] != 1 || merged.Scenarios["y"]["m"] != 2 {
		t.Fatalf("merged = %+v", merged.Scenarios)
	}
	// The merged point is independent of its inputs.
	b.Scenarios["y"]["m"] = 99
	if merged.Scenarios["y"]["m"] != 2 {
		t.Fatal("merge aliases input maps")
	}
	// Overlapping shards are an error, not a silent last-wins.
	dup := New("shard1-again")
	dup.Add("x", "m", 3)
	if _, err := Merge(a, dup); err == nil {
		t.Fatal("overlapping shard merge accepted")
	}
	// Quick and full runs cannot merge into one point.
	q := New("quick")
	q.Quick = true
	q.Add("z", "m", 1)
	if _, err := Merge(a, q); err == nil {
		t.Fatal("quick/full merge accepted")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge(nil, nil); err == nil {
		t.Fatal("all-nil merge accepted")
	}
	// Nil inputs are skipped, even in first position.
	if m, err := Merge(nil, a); err != nil || m.Scenarios["x"]["m"] != 1 {
		t.Fatalf("nil-first merge: %+v, %v", m, err)
	}
	// The envelope comes from the first non-empty input, so an empty
	// shard (an oversharded CI slot) in front of quick shards neither
	// poisons Quick nor trips the mismatch check.
	empty := New("empty-slot")
	if m, err := Merge(empty, q); err != nil || !m.Quick || m.Label != "quick" {
		t.Fatalf("empty-first merge: %+v, %v", m, err)
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkDataplane/serial-8         	     500	      2049 ns/op	       0 B/op	       0 allocs/op
BenchmarkDataplane/sharded-8        	    1000	       912 ns/op	      16 B/op	       1 allocs/op
BenchmarkHeaderRoundTrip-8          	 5000000	       231.5 ns/op
some test log line
PASS
ok  	repro	12.3s
`
	s := New("bench")
	n, err := ParseGoBench(s, strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("parsed %d lines, want 3", n)
	}
	serial := s.Scenarios[GoBenchPrefix+"Dataplane/serial"]
	if serial["ns_per_op"] != 2049 || serial["bytes_per_op"] != 0 || serial["allocs_per_op"] != 0 || serial["iterations"] != 500 {
		t.Fatalf("serial = %+v", serial)
	}
	if s.Scenarios[GoBenchPrefix+"HeaderRoundTrip"]["ns_per_op"] != 231.5 {
		t.Fatalf("round trip = %+v", s.Scenarios)
	}
	// Pseudo-scenarios are namespaced away from registry names.
	for name := range s.Scenarios {
		if !strings.HasPrefix(name, GoBenchPrefix) {
			t.Fatalf("unnamespaced go-bench scenario %q", name)
		}
	}
}

func TestParseGoBenchKeepsCollidingNamesApart(t *testing.T) {
	// Under GOMAXPROCS=1 go test appends no "-P" tag, so a benchmark name
	// that legitimately ends in "-<digits>" would collide with a sibling
	// after tag stripping; colliding lines keep their original names.
	out := `BenchmarkPool/shards-2 	 100	 50 ns/op
BenchmarkPool/shards-4 	 100	 30 ns/op
BenchmarkPool/serial-8 	 100	 90 ns/op
`
	s := New("bench")
	if _, err := ParseGoBench(s, strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if s.Scenarios[GoBenchPrefix+"Pool/shards-2"]["ns_per_op"] != 50 ||
		s.Scenarios[GoBenchPrefix+"Pool/shards-4"]["ns_per_op"] != 30 {
		t.Fatalf("colliding names merged: %+v", s.Scenarios)
	}
	// The non-colliding sibling still gets the usual tag stripping.
	if s.Scenarios[GoBenchPrefix+"Pool/serial"]["ns_per_op"] != 90 {
		t.Fatalf("tag not stripped from unique name: %+v", s.Scenarios)
	}
}

package benchstore

import "testing"

// snapWith builds a one-scenario snapshot with a single metric value.
func snapWith(metric string, v float64) *Snapshot {
	s := &Snapshot{Label: "t", QuickUnknown: true}
	s.Add("x", metric, v)
	return s
}

// TestDirectionsTableAgreesWithDiff drives every exported suffix rule
// and neutral name through a real Diff and checks the gate behaves as
// the table claims: a 50% move in the bad direction regresses exactly
// the non-neutral entries, and neutral entries never gate. This pins
// the exported table (which the labvet metricname analyzer consumes) to
// Diff's actual behavior so the two can never drift.
func TestDirectionsTableAgreesWithDiff(t *testing.T) {
	check := func(metric string, want Direction) {
		t.Helper()
		if got := DirectionFor(metric); got != want {
			t.Fatalf("DirectionFor(%q) = %v, want %v", metric, got, want)
		}
		// Bad-direction move: higher-is-better loses half, everything
		// else (lower/neutral) rises by half.
		base, cur := 100.0, 150.0
		if want == HigherIsBetter {
			cur = 50
		}
		c := Diff(snapWith(metric, base), snapWith(metric, cur), Options{})
		gates := c.Regressions > 0
		if want == Neutral && gates {
			t.Fatalf("metric %q: neutral per table but Diff regressed on it", metric)
		}
		if want != Neutral && !gates {
			t.Fatalf("metric %q: direction %v per table but Diff did not regress on a 50%% bad move", metric, want)
		}
	}

	for _, r := range Directions() {
		// A synthetic name carrying exactly this suffix. The prefix must
		// not itself match an earlier rule; "zz" + suffix is safe for
		// every entry in the table.
		check("zz"+r.Suffix, r.Direction)
	}
	for _, name := range NeutralNames() {
		check(name, Neutral)
	}
}

// TestKnownDirectionUnrecognized pins the analyzer-facing contract: a
// name matching neither the suffix table nor the neutral list reports
// ok=false (and falls back to Neutral in Diff).
func TestKnownDirectionUnrecognized(t *testing.T) {
	if d, ok := KnownDirection("some_mystery_metric"); ok || d != Neutral {
		t.Fatalf("KnownDirection(some_mystery_metric) = %v, %v; want Neutral, false", d, ok)
	}
	if DirectionFor("some_mystery_metric") != Neutral {
		t.Fatal("unrecognized metric must diff as Neutral")
	}
}

// TestSuffixRuleOrder pins the ordering hazards the table comment
// promises: rate suffixes beat the bare "_s"/"_ms" cost suffixes, and
// "_mbps" is not swallowed by "_s".
func TestSuffixRuleOrder(t *testing.T) {
	for metric, want := range map[string]Direction{
		"ops_per_s":     Neutral,
		"items_per_ms":  Neutral,
		"forward_mpps":  Neutral,
		"agg_mbps":      HigherIsBetter,
		"latency_ms":    LowerIsBetter,
		"makespan_s":    LowerIsBetter,
		"mean_hops":     Neutral,
		"route_bits":    LowerIsBetter,
		"x_violations":  LowerIsBetter,
		"delivery_rate": HigherIsBetter,
	} {
		if got := DirectionFor(metric); got != want {
			t.Errorf("DirectionFor(%q) = %v, want %v", metric, got, want)
		}
	}
}

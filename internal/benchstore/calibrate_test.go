package benchstore

import (
	"math"
	"strings"
	"testing"
)

func TestCalibrateHost(t *testing.T) {
	rate := CalibrateHost()
	if !(rate > 0) || math.IsInf(rate, 1) || math.IsNaN(rate) {
		t.Fatalf("CalibrateHost() = %v, want a positive finite rate", rate)
	}
	// Even a slow emulated CPU runs the kernel above 1M steps/sec; a value
	// below that means the timer, not the kernel, was measured.
	if rate < 1e6 {
		t.Fatalf("CalibrateHost() = %v steps/sec, implausibly slow", rate)
	}
}

func TestNormalizeRates(t *testing.T) {
	s := New("t")
	s.Add("pl", "pkts_per_sec", 3_000_000)
	s.Add("pl", "hops_per_sec", 9_000_000)
	s.Add("pl", "delivery_rate", 1.0) // not a rate suffix: untouched
	s.Add("tx", "frames_per_ms", 20)
	s.Add("tx", "throughput_mpps", 4.5)
	s.Add("tx", "events_per_s", 100)
	n, err := NormalizeRates(s, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("NormalizeRates stamped %d ratios, want 5", n)
	}
	checks := []struct {
		scen, metric string
		want         float64
	}{
		{"pl", "pkts_ratio", 1.5},
		{"pl", "hops_ratio", 4.5},
		{"tx", "frames_ratio", 1e-5},
		{"tx", "throughput_ratio", 2.25e-6},
		{"tx", "events_ratio", 5e-5},
	}
	for _, c := range checks {
		got, ok := s.Scenarios[c.scen][c.metric]
		if !ok {
			t.Fatalf("%s/%s not stamped", c.scen, c.metric)
		}
		if math.Abs(got-c.want) > 1e-12*c.want {
			t.Fatalf("%s/%s = %v, want %v", c.scen, c.metric, got, c.want)
		}
	}
	if _, leaked := s.Scenarios["pl"]["delivery_ratio"]; leaked {
		t.Fatal("non-rate metric grew a ratio")
	}
	// Every stamped ratio must be under the gate per the direction table.
	for _, c := range checks {
		if d, ok := KnownDirection(c.metric); !ok || d != HigherIsBetter {
			t.Fatalf("KnownDirection(%q) = %v, %v; ratios must gate higher-is-better", c.metric, d, ok)
		}
	}
	// Idempotence matters for re-running bench tooling over a snapshot:
	// ratios must not grow ratios of their own.
	if n, err := NormalizeRates(s, 2_000_000); err != nil || n != 5 {
		t.Fatalf("second normalize: n=%d err=%v (ratio metrics re-derived?)", n, err)
	}
	if _, leaked := s.Scenarios["pl"]["pkts_ratio_ratio"]; leaked {
		t.Fatal("ratio metric grew a nested ratio")
	}
}

func TestNormalizeRatesRejectsBadRate(t *testing.T) {
	s := New("t")
	s.Add("pl", "pkts_per_sec", 1)
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NormalizeRates(s, rate); err == nil {
			t.Fatalf("NormalizeRates(%v) accepted", rate)
		}
	}
}

// TestRatioRegressionGates is the end-to-end gating property the
// calibration exists for: raw _per_sec rates never fail a compare, but a
// slide in the derived _ratio does — and an allocs_per_op rise gates at
// zero tolerance through the same Diff.
func TestRatioRegressionGates(t *testing.T) {
	mkSnap := func(rate float64) *Snapshot {
		s := New("t")
		s.QuickUnknown = true
		s.Add("packetlevel", "pkts_per_sec", rate)
		if _, err := NormalizeRates(s, 2_000_000); err != nil {
			t.Fatal(err)
		}
		return s
	}
	base, slid := mkSnap(6_000_000), mkSnap(3_000_000)
	c := Diff(base, slid, Options{})
	if c.Regressions != 1 {
		t.Fatalf("halved ratio: %d regressions, want exactly the _ratio metric", c.Regressions)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("halved ratio passed the gate: %v", err)
	}
	for _, d := range c.Deltas {
		if d.Status == StatusRegressed && d.Metric != "pkts_ratio" {
			t.Fatalf("regression attributed to %q, want pkts_ratio", d.Metric)
		}
		if d.Metric == "pkts_per_sec" && d.Status != StatusOK {
			t.Fatalf("raw rate gated (%s); rates must stay neutral", d.Status)
		}
	}
	// Same movement on both sides cancels in the ratio: no regression
	// even though the raw rate halved, if the host calibration halved too
	// (a slower runner, not a slower hot path).
	slowHost := New("t")
	slowHost.QuickUnknown = true
	slowHost.Add("packetlevel", "pkts_per_sec", 3_000_000)
	if _, err := NormalizeRates(slowHost, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if c := Diff(base, slowHost, Options{}); c.Regressions != 0 {
		t.Fatalf("proportionally slower host flagged %d regressions; the ratio should cancel machine speed", c.Regressions)
	}
	// allocs_per_op gates with zero tolerance (negative threshold).
	allocBase, allocCur := New("b"), New("c")
	allocBase.QuickUnknown, allocCur.QuickUnknown = true, true
	allocBase.Add(GoBenchPrefix+"DataplaneForwarding/serial", "allocs_per_op", 0)
	allocCur.Add(GoBenchPrefix+"DataplaneForwarding/serial", "allocs_per_op", 1)
	if c := Diff(allocBase, allocCur, Options{Threshold: -1}); c.Regressions != 1 || c.Err() == nil {
		t.Fatalf("allocs/op 0 -> 1 at zero tolerance: %d regressions, err %v", c.Regressions, c.Err())
	}
	// And the boundary: unchanged allocs pass.
	allocCur.Scenarios[GoBenchPrefix+"DataplaneForwarding/serial"]["allocs_per_op"] = 0
	if c := Diff(allocBase, allocCur, Options{Threshold: -1}); c.Err() != nil {
		t.Fatalf("unchanged allocs failed zero-tolerance gate: %v", c.Err())
	}
}

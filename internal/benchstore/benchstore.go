// Package benchstore is the benchmark-trajectory store behind CI perf
// tracking: it turns scenario.Report envelopes (and `go test -bench`
// output) into versioned Snapshot documents, persists them as numbered
// BENCH_<n>.json files — the points of the trajectory — and diffs any two
// points per scenario/metric with direction-aware relative-regression
// thresholds. cmd/labctl's bench and compare subcommands are thin shells
// over this package: bench appends the next snapshot, compare renders a
// human/machine-readable report and signals regressions for CI gates.
package benchstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/scenario"
)

// SchemaVersion identifies the snapshot document layout. Bump it only on
// incompatible changes; Load rejects documents from a newer schema so an
// old binary fails loudly instead of misreading the trajectory.
const SchemaVersion = 1

// Snapshot is one point of the benchmark trajectory: every metric of
// every scenario observed in one suite run, keyed scenario → metric →
// value. Marshaling is stable (encoding/json sorts both map levels), so
// identical measurements produce byte-identical documents and BENCH_*.json
// diffs cleanly under git.
type Snapshot struct {
	// Version is the snapshot schema version (SchemaVersion at write time).
	Version int `json:"version"`
	// Label identifies the run (a git SHA, "seed", a machine tag, ...).
	Label string `json:"label,omitempty"`
	// CreatedAt is the RFC 3339 creation time, if the writer stamped one.
	CreatedAt string `json:"created_at,omitempty"`
	// Quick marks a smoke-configuration run; quick and full snapshots are
	// not comparable, and Diff flags a mismatch.
	Quick bool `json:"quick,omitempty"`
	// QuickUnknown marks a snapshot whose source did not record its
	// configuration class (a bare Report has no quick field), so Diff
	// must not treat Quick=false as a declared full run. In-process only.
	QuickUnknown bool `json:"-"`
	// Scenarios holds the measurements: scenario name → metric → value.
	Scenarios map[string]map[string]float64 `json:"scenarios"`
}

// New returns an empty snapshot carrying the current schema version.
func New(label string) *Snapshot {
	return &Snapshot{
		Version:   SchemaVersion,
		Label:     label,
		Scenarios: make(map[string]map[string]float64),
	}
}

// Add records one measurement, creating the scenario's map on first use.
func (s *Snapshot) Add(scenarioName, metric string, value float64) {
	if s.Scenarios == nil {
		s.Scenarios = make(map[string]map[string]float64)
	}
	m, ok := s.Scenarios[scenarioName]
	if !ok {
		m = make(map[string]float64)
		s.Scenarios[scenarioName] = m
	}
	m[metric] = value
}

// ScenarioNames returns the recorded scenario names, sorted.
func (s *Snapshot) ScenarioNames() []string {
	names := make([]string, 0, len(s.Scenarios))
	for name := range s.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AddReport folds one scenario report into the snapshot: every metric,
// plus the envelope durations as the same wall_seconds/emulated_seconds
// pseudo-metrics the CSV writer emits.
func (s *Snapshot) AddReport(rep *scenario.Report) {
	if rep == nil {
		return
	}
	s.Add(rep.Scenario, "wall_seconds", rep.WallSeconds)
	if rep.EmulatedSeconds != 0 {
		s.Add(rep.Scenario, "emulated_seconds", rep.EmulatedSeconds)
	}
	for name, v := range rep.Metrics {
		s.Add(rep.Scenario, name, v)
	}
}

// FromReports builds a snapshot from a report set (one suite run).
func FromReports(label string, reports ...*scenario.Report) *Snapshot {
	s := New(label)
	for _, rep := range reports {
		s.AddReport(rep)
	}
	return s
}

// Merge unions shard snapshots back into one trajectory point. Each
// scenario must come from exactly one input: a duplicate means two shards
// (or two runs) measured the same scenario, which would make the merged
// point depend on argument order, so it is an error. Label, CreatedAt,
// and Quick are taken from the first non-empty input (an oversharded CI
// slot legitimately contributes an empty snapshot); nil inputs are
// skipped. A quick/full mix among non-empty inputs is rejected for the
// same reason quick and full snapshots do not diff.
func Merge(snaps ...*Snapshot) (*Snapshot, error) {
	var first *Snapshot
	for _, in := range snaps {
		if in == nil {
			continue
		}
		if first == nil || (len(first.Scenarios) == 0 && len(in.Scenarios) > 0) {
			first = in
		}
		if len(first.Scenarios) > 0 {
			break
		}
	}
	if first == nil {
		return nil, fmt.Errorf("benchstore: merge of zero snapshots")
	}
	out := New(first.Label)
	out.CreatedAt = first.CreatedAt
	out.Quick = first.Quick
	out.QuickUnknown = first.QuickUnknown
	for _, in := range snaps {
		if in == nil || len(in.Scenarios) == 0 {
			continue
		}
		if in.Quick != out.Quick && !in.QuickUnknown && !out.QuickUnknown {
			return nil, fmt.Errorf("benchstore: merging quick and full snapshots")
		}
		for name, metrics := range in.Scenarios {
			if _, dup := out.Scenarios[name]; dup {
				return nil, fmt.Errorf("benchstore: scenario %q present in more than one shard", name)
			}
			merged := make(map[string]float64, len(metrics))
			for k, v := range metrics {
				merged[k] = v
			}
			out.Scenarios[name] = merged
		}
	}
	return out, nil
}

// Save writes the snapshot as indented, stable JSON.
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a strict snapshot document (see LoadAny for sniffing other
// result shapes).
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return loadBytes(path, data)
}

// loadBytes parses already-read snapshot bytes; path is for messages.
func loadBytes(path string, data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchstore: parsing %s: %w", path, err)
	}
	if s.Version > SchemaVersion {
		return nil, fmt.Errorf("benchstore: %s is schema v%d, this binary reads ≤ v%d", path, s.Version, SchemaVersion)
	}
	if s.Scenarios == nil {
		return nil, fmt.Errorf("benchstore: %s has no scenarios — not a snapshot", path)
	}
	return &s, nil
}

// LoadAny reads any of the machine-readable result documents the lab
// emits and normalizes it to a snapshot:
//
//   - a BENCH_*.json snapshot (has "scenarios"),
//   - a `labctl suite -o` SuiteResult (has "outcomes"; failed or skipped
//     outcomes are an error — a partial run must not masquerade as a
//     trajectory point),
//   - a single `labctl run -o` Report, or a JSON array of Reports.
//
// The label of a converted document is the file's base name. Report
// documents do not record their configuration class, so their snapshots
// carry QuickUnknown and Diff waives the quick/full comparability check
// for them.
func LoadAny(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Scenarios json.RawMessage `json:"scenarios"`
		Outcomes  json.RawMessage `json:"outcomes"`
		Scenario  string          `json:"scenario"`
	}
	trimmed := firstJSONByte(data)
	switch {
	case trimmed == '[':
		var reps []*scenario.Report
		if err := json.Unmarshal(data, &reps); err != nil {
			return nil, fmt.Errorf("benchstore: %s: not a report array: %w", path, err)
		}
		s := FromReports(filepath.Base(path), reps...)
		s.QuickUnknown = true
		return s, nil
	case trimmed != '{':
		return nil, fmt.Errorf("benchstore: %s: not a JSON document", path)
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("benchstore: parsing %s: %w", path, err)
	}
	switch {
	case probe.Scenarios != nil:
		return loadBytes(path, data)
	case probe.Outcomes != nil:
		var res scenario.SuiteResult
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, fmt.Errorf("benchstore: %s: not a suite result: %w", path, err)
		}
		if res.Failed > 0 || res.Skipped > 0 {
			return nil, fmt.Errorf("benchstore: %s records a partial run (%d failed, %d skipped) — not a trajectory point",
				path, res.Failed, res.Skipped)
		}
		s := FromReports(filepath.Base(path), res.Reports()...)
		s.Quick = res.Quick
		return s, nil
	case probe.Scenario != "":
		var rep scenario.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("benchstore: %s: not a report: %w", path, err)
		}
		s := FromReports(filepath.Base(path), &rep)
		s.QuickUnknown = true
		return s, nil
	}
	return nil, fmt.Errorf("benchstore: %s: unrecognized result document (want snapshot, suite result, or report)", path)
}

// firstJSONByte returns the first non-whitespace byte, or 0.
func firstJSONByte(data []byte) byte {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b
	}
	return 0
}

// benchFileRE matches trajectory file names; the capture is the point's
// sequence number.
var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Entry is one trajectory file found on disk.
type Entry struct {
	N    int
	Path string
}

// ScanDir lists the BENCH_<n>.json files under dir in trajectory order.
func ScanDir(dir string) ([]Entry, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		m := benchFileRE.FindStringSubmatch(f.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		entries = append(entries, Entry{N: n, Path: filepath.Join(dir, f.Name())})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].N < entries[j].N })
	return entries, nil
}

// LatestPath returns the newest trajectory file under dir, or "" when the
// trajectory is empty.
func LatestPath(dir string) (string, error) {
	entries, err := ScanDir(dir)
	if err != nil || len(entries) == 0 {
		return "", err
	}
	return entries[len(entries)-1].Path, nil
}

// AppendDir persists the snapshot as the next point of dir's trajectory
// (BENCH_<max+1>.json, BENCH_0.json for an empty trajectory) and returns
// the path written. An unlabeled snapshot is labeled with its point name
// so comparisons read "BENCH_0 -> BENCH_3" out of the box.
func AppendDir(dir string, s *Snapshot) (string, error) {
	entries, err := ScanDir(dir)
	if err != nil {
		return "", err
	}
	next := 0
	if len(entries) > 0 {
		next = entries[len(entries)-1].N + 1
	}
	if s.Label == "" {
		s.Label = fmt.Sprintf("BENCH_%d", next)
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
	if err := s.Save(path); err != nil {
		return "", err
	}
	return path, nil
}

package benchstore

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// GoBenchPrefix namespaces `go test -bench` results inside a snapshot so
// they can never collide with registered scenario names.
const GoBenchPrefix = "gobench:"

// ParseGoBench folds standard `go test -bench` output into the snapshot:
// one pseudo-scenario per benchmark (GoBenchPrefix + name, with the
// "Benchmark" prefix and "-GOMAXPROCS" suffix stripped), one metric per
// reported unit ("ns/op" → "ns_per_op", "B/op" → "bytes_per_op", custom
// units likewise). Non-benchmark lines (the goos/pkg header, PASS/ok,
// test logs) are skipped, so piping a whole `go test -bench` run in is
// fine. The iteration count is recorded as "iterations". Returns the
// number of benchmark lines parsed.
func ParseGoBench(s *Snapshot, r io.Reader) (int, error) {
	type benchLine struct {
		orig, stripped string
		metrics        map[string]float64
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var lines []benchLine
	strippedCount := make(map[string]int)
	for sc.Scan() {
		orig, stripped, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		lines = append(lines, benchLine{orig: orig, stripped: stripped, metrics: metrics})
		strippedCount[stripped]++
	}
	if err := sc.Err(); err != nil {
		return len(lines), fmt.Errorf("benchstore: reading bench output: %w", err)
	}
	// Second pass: use the stripped name unless stripping collided two
	// distinct benchmarks (a name that legitimately ends in "-<digits>"
	// next to a sibling, under GOMAXPROCS=1 where go test appends no tag)
	// — those keep their original names rather than silently overwriting
	// each other.
	for _, l := range lines {
		name := l.stripped
		if strippedCount[l.stripped] > 1 && l.orig != l.stripped {
			name = l.orig
		}
		for metric, v := range l.metrics {
			s.Add(GoBenchPrefix+name, metric, v)
		}
	}
	return len(lines), nil
}

// parseBenchLine parses one `Benchmark<Name>[-P] <iters> <value> <unit>
// [<value> <unit>...]` line, returning the name both as written and with
// the trailing -GOMAXPROCS tag go test appends ("-8") stripped.
func parseBenchLine(line string) (orig, stripped string, metrics map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", "", nil, false
	}
	orig = strings.TrimPrefix(fields[0], "Benchmark")
	stripped = orig
	if i := strings.LastIndex(stripped, "-"); i > 0 {
		if _, err := strconv.Atoi(stripped[i+1:]); err == nil {
			stripped = stripped[:i]
		}
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", "", nil, false
	}
	metrics = map[string]float64{"iterations": iters}
	// Remaining fields are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", "", nil, false
		}
		metrics[unitToMetric(fields[i+1])] = v
	}
	if len(metrics) < 2 {
		return "", "", nil, false
	}
	return orig, stripped, metrics, true
}

// unitToMetric maps a go test unit to a snapshot metric name.
func unitToMetric(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "MB/s":
		return "mb_per_sec"
	}
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

package benchstore

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Host calibration: raw `_per_sec` rates are meaningful on one machine
// and noise across CI runner generations, which is why the direction
// table keeps them Neutral — they never gate. CalibrateHost measures a
// fixed, dependency-free CPU reference workload on the measuring host;
// dividing a rate by the host's reference rate yields a dimensionless
// `_ratio` metric that tracks the workload's efficiency relative to the
// machine it ran on. Ratios are HigherIsBetter in the direction table, so
// they do gate: a hot-path regression slides every ratio down no matter
// which runner class the suite landed on.

// calibOps is the reference-kernel iteration count. ~16M splitmix64
// steps run in tens of milliseconds on anything CI-grade: long enough to
// amortize timer granularity, short enough to repeat best-of-N.
const calibOps = 1 << 24

// calibRounds is the best-of-N trial count. The minimum over trials is
// the standard noise filter for CPU-bound microbenchmarks: interference
// only ever slows a trial down.
const calibRounds = 3

// calibSink defeats dead-code elimination of the reference kernel.
var calibSink uint64

// calibKernel is the reference workload: n steps of the splitmix64
// mixing function. Pure register arithmetic — no memory traffic, no
// allocation — so it proxies scalar CPU speed, the resource the
// forwarding hot path is bound by.
func calibKernel(n int) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return x
}

// CalibrateHost measures the host's reference rate in kernel steps per
// second (best of calibRounds trials). Run it in the same process as the
// benchmark suite it normalizes, on the measuring host — a calibration
// taken on one machine says nothing about rates measured on another.
func CalibrateHost() float64 {
	best := math.MaxFloat64
	for i := 0; i < calibRounds; i++ {
		start := time.Now()
		calibSink += calibKernel(calibOps)
		if el := time.Since(start).Seconds(); el < best {
			best = el
		}
	}
	return float64(calibOps) / best
}

// rateSuffixes are the machine-dependent rate suffixes NormalizeRates
// derives `_ratio` metrics from — exactly the Neutral rate entries of
// the direction table.
var rateSuffixes = []string{"_per_sec", "_per_s", "_per_ms", "_mpps"}

// NormalizeRates stamps a `<base>_ratio` companion next to every rate
// metric of the snapshot: the rate divided by hostRate (a CalibrateHost
// result from the same host). It returns the number of ratios written.
// Scale differences between rates and the reference kernel are absorbed
// by the baseline: the gate compares ratios across snapshots, so only
// their movement matters, not their magnitude.
func NormalizeRates(s *Snapshot, hostRate float64) (int, error) {
	if !(hostRate > 0) || math.IsInf(hostRate, 1) {
		return 0, fmt.Errorf("benchstore: host calibration rate %v is not a positive finite number", hostRate)
	}
	n := 0
	for _, metrics := range s.Scenarios {
		type pair struct {
			name string
			v    float64
		}
		var derived []pair
		for name, v := range metrics {
			for _, suf := range rateSuffixes {
				if strings.HasSuffix(name, suf) {
					derived = append(derived, pair{strings.TrimSuffix(name, suf) + "_ratio", v / hostRate})
					break
				}
			}
		}
		// Insertion into the metrics map is order-independent, but keep
		// the derived list canonical anyway — it sizes n and may grow
		// order-sensitive consumers later.
		sort.Slice(derived, func(i, j int) bool { return derived[i].name < derived[j].name })
		for _, d := range derived {
			metrics[d.name] = d.v
		}
		n += len(derived)
	}
	return n, nil
}

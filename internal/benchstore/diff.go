package benchstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Direction says which way a metric is allowed to move before the change
// counts as a regression.
type Direction int

const (
	// Neutral metrics are recorded and diffed but never gate: either the
	// sign of "better" is unknown, or the value is machine-dependent
	// (wall-clock rates) and would make CI flaky across runner classes.
	Neutral Direction = iota
	// HigherIsBetter flags drops past the threshold (throughput, R²).
	HigherIsBetter
	// LowerIsBetter flags rises past the threshold (latency, RMSE, drops).
	LowerIsBetter
)

// String returns the compact direction tag used in reports.
func (d Direction) String() string {
	switch d {
	case HigherIsBetter:
		return "higher"
	case LowerIsBetter:
		return "lower"
	default:
		return "neutral"
	}
}

// DirectionFor classifies a metric by naming convention — the exported
// table in directions.go, shared with the labvet metricname analyzer.
// Unknown names are Neutral: an unrecognized metric must never fail a CI
// gate by accident — give it a conventional suffix or an explicit
// override to put it under the gate.
func DirectionFor(metric string) Direction {
	d, _ := KnownDirection(metric)
	return d
}

// Options tunes a Diff. The zero value uses DefaultThreshold, no absolute
// epsilon, and the DirectionFor heuristic for every metric.
type Options struct {
	// Threshold is the relative worsening that counts as a regression: a
	// change regresses only when |cur-base|/|base| is strictly greater
	// than Threshold AND moves in the metric's bad direction. Exactly at
	// the threshold is still ok (the boundary belongs to the pass side).
	// 0 means DefaultThreshold; negative means zero tolerance.
	Threshold float64
	// AbsEps ignores changes whose absolute magnitude is ≤ AbsEps. It is
	// the zero-baseline guard: against a zero-valued baseline metric every
	// relative threshold is infinitely exceeded, so only a move beyond
	// AbsEps (default: any nonzero move) flags.
	AbsEps float64
	// Directions overrides DirectionFor per metric, keyed by metric name
	// or by the more specific "scenario/metric".
	Directions map[string]Direction
	// IgnoreMissing drops scenarios/metrics present in the baseline but
	// absent from the current snapshot from the failure signal (they are
	// still listed). Without it a vanished scenario fails the gate — a
	// shrunk suite must not read as a green pass.
	IgnoreMissing bool
}

// DefaultThreshold is the relative regression tolerance when Options.
// Threshold is zero: 10%, loose enough for deterministic simulation
// metrics to never trip on noise, tight enough to catch real movement.
const DefaultThreshold = 0.10

func (o Options) threshold() float64 {
	switch {
	case o.Threshold == 0:
		return DefaultThreshold
	case o.Threshold < 0:
		return 0
	}
	return o.Threshold
}

func (o Options) directionFor(scenarioName, metric string) Direction {
	if d, ok := o.Directions[scenarioName+"/"+metric]; ok {
		return d
	}
	if d, ok := o.Directions[metric]; ok {
		return d
	}
	return DirectionFor(metric)
}

// Status classifies one metric's movement between two snapshots.
type Status string

const (
	StatusOK           Status = "ok"               // within threshold, or neutral
	StatusImproved     Status = "improved"         // moved past threshold in the good direction
	StatusRegressed    Status = "regressed"        // moved past threshold in the bad direction
	StatusMissing      Status = "missing"          // in baseline, absent from current
	StatusNew          Status = "new"              // in current, absent from baseline
	StatusScenarioGone Status = "scenario-missing" // whole scenario absent from current
	StatusScenarioNew  Status = "scenario-new"     // whole scenario absent from baseline
)

// Delta is one scenario/metric comparison row.
type Delta struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Current  float64 `json:"current"`
	// Rel is the signed relative change (cur-base)/|base|; ±Inf is
	// serialized as ±1e308 to stay inside JSON. Zero-to-zero is 0.
	Rel       float64 `json:"rel"`
	Direction string  `json:"direction"`
	Status    Status  `json:"status"`
}

// Comparison is the full diff of two snapshots.
type Comparison struct {
	BaseLabel    string  `json:"base_label,omitempty"`
	CurrentLabel string  `json:"current_label,omitempty"`
	Threshold    float64 `json:"threshold"`
	// QuickMismatch is set when one snapshot is a quick run and the other
	// is not; the numbers are not comparable and the comparison fails.
	QuickMismatch bool    `json:"quick_mismatch,omitempty"`
	Deltas        []Delta `json:"deltas"`
	Regressions   int     `json:"regressions"`
	Improvements  int     `json:"improvements"`
	// Missing counts baseline scenarios/metrics the current run lost
	// (0 under Options.IgnoreMissing).
	Missing int `json:"missing"`
}

// Err folds the comparison into a single gate signal: non-nil when any
// metric regressed, when baseline coverage was lost, or when the
// snapshots are not comparable (quick vs full).
func (c *Comparison) Err() error {
	switch {
	case c.QuickMismatch:
		return fmt.Errorf("benchstore: quick and full snapshots are not comparable")
	case c.Regressions > 0 && c.Missing > 0:
		return fmt.Errorf("benchstore: %d metric(s) regressed past %.0f%% and %d baseline entr(ies) missing",
			c.Regressions, c.Threshold*100, c.Missing)
	case c.Regressions > 0:
		return fmt.Errorf("benchstore: %d metric(s) regressed past %.0f%%", c.Regressions, c.Threshold*100)
	case c.Missing > 0:
		return fmt.Errorf("benchstore: %d baseline entr(ies) missing from current run", c.Missing)
	}
	return nil
}

// relChange returns the signed relative change, with zero-baseline
// mapped to ±Inf (and 0 for no change).
func relChange(base, cur float64) float64 {
	if cur == base {
		return 0
	}
	if base == 0 {
		if cur > 0 {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return (cur - base) / math.Abs(base)
}

// Diff compares two trajectory points metric by metric. Baseline order
// (sorted scenario, then sorted metric) drives the row order; current-only
// scenarios/metrics are appended as informational "new" rows.
func Diff(base, cur *Snapshot, opts Options) *Comparison {
	c := &Comparison{
		BaseLabel:    base.Label,
		CurrentLabel: cur.Label,
		Threshold:    opts.threshold(),
		// The comparability check needs both sides to declare their
		// configuration class; a report-derived snapshot (QuickUnknown)
		// cannot mismatch.
		QuickMismatch: base.Quick != cur.Quick && !base.QuickUnknown && !cur.QuickUnknown,
	}
	for _, scen := range base.ScenarioNames() {
		baseMetrics := base.Scenarios[scen]
		curMetrics, ok := cur.Scenarios[scen]
		if !ok {
			c.Deltas = append(c.Deltas, Delta{Scenario: scen, Status: StatusScenarioGone})
			if !opts.IgnoreMissing {
				c.Missing++
			}
			continue
		}
		for _, metric := range sortedKeys(baseMetrics) {
			bv := baseMetrics[metric]
			dir := opts.directionFor(scen, metric)
			d := Delta{Scenario: scen, Metric: metric, Base: bv, Direction: dir.String()}
			cv, ok := curMetrics[metric]
			if !ok {
				d.Status = StatusMissing
				if !opts.IgnoreMissing {
					c.Missing++
				}
				c.Deltas = append(c.Deltas, d)
				continue
			}
			d.Current = cv
			d.Rel = clampRel(relChange(bv, cv))
			d.Status = classify(bv, cv, dir, c.Threshold, opts.AbsEps)
			switch d.Status {
			case StatusRegressed:
				c.Regressions++
			case StatusImproved:
				c.Improvements++
			}
			c.Deltas = append(c.Deltas, d)
		}
		// Current-only metrics of a shared scenario: informational.
		for _, metric := range sortedKeys(curMetrics) {
			if _, shared := baseMetrics[metric]; shared {
				continue
			}
			c.Deltas = append(c.Deltas, Delta{
				Scenario: scen, Metric: metric, Current: curMetrics[metric],
				Direction: opts.directionFor(scen, metric).String(), Status: StatusNew,
			})
		}
	}
	for _, scen := range cur.ScenarioNames() {
		if _, shared := base.Scenarios[scen]; !shared {
			c.Deltas = append(c.Deltas, Delta{Scenario: scen, Status: StatusScenarioNew})
		}
	}
	return c
}

// classify applies the regression rule: a bad-direction move strictly
// past the relative threshold, unless the absolute move is within eps.
// The relative test on a zero baseline is always "past threshold", which
// is exactly why AbsEps exists (see Options.AbsEps).
func classify(base, cur float64, dir Direction, threshold, eps float64) Status {
	if dir == Neutral || cur == base {
		return StatusOK
	}
	if math.Abs(cur-base) <= eps {
		return StatusOK
	}
	rel := relChange(base, cur)
	worse := (dir == HigherIsBetter && rel < 0) || (dir == LowerIsBetter && rel > 0)
	past := math.Abs(rel) > threshold
	switch {
	case worse && past:
		return StatusRegressed
	case !worse && past:
		return StatusImproved
	}
	return StatusOK
}

// clampRel keeps ±Inf representable in JSON.
func clampRel(rel float64) float64 {
	switch {
	case math.IsInf(rel, 1):
		return math.MaxFloat64
	case math.IsInf(rel, -1):
		return -math.MaxFloat64
	}
	return rel
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the human-readable comparison: flagged rows first
// (regressions, missing entries), then a one-line summary; -v style full
// listings belong to the CSV/JSON forms.
func (c *Comparison) WriteText(w io.Writer) {
	fmt.Fprintf(w, "compare: %s -> %s (threshold %.0f%%)\n",
		orUnlabeled(c.BaseLabel), orUnlabeled(c.CurrentLabel), c.Threshold*100)
	if c.QuickMismatch {
		fmt.Fprintln(w, "  QUICK/FULL MISMATCH: snapshots are not comparable")
	}
	for _, d := range c.Deltas {
		switch d.Status {
		case StatusRegressed, StatusImproved:
			fmt.Fprintf(w, "  %-10s %s/%s: %g -> %g (%+.1f%%, %s is better)\n",
				strings.ToUpper(string(d.Status)), d.Scenario, d.Metric, d.Base, d.Current, 100*d.Rel, d.Direction)
		case StatusMissing:
			fmt.Fprintf(w, "  MISSING    %s/%s: %g in baseline, absent now\n", d.Scenario, d.Metric, d.Base)
		case StatusScenarioGone:
			fmt.Fprintf(w, "  MISSING    scenario %s: in baseline, absent now\n", d.Scenario)
		case StatusScenarioNew:
			fmt.Fprintf(w, "  NEW        scenario %s: not in baseline\n", d.Scenario)
		}
	}
	ok := 0
	for _, d := range c.Deltas {
		if d.Status == StatusOK {
			ok++
		}
	}
	fmt.Fprintf(w, "compare: %d ok, %d improved, %d regressed, %d missing\n",
		ok, c.Improvements, c.Regressions, c.Missing)
}

func orUnlabeled(label string) string {
	if label == "" {
		return "(unlabeled)"
	}
	return label
}

// WriteCSV renders every row machine-readably:
// scenario,metric,base,current,rel,direction,status.
func (c *Comparison) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "metric", "base", "current", "rel", "direction", "status"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, d := range c.Deltas {
		if err := cw.Write([]string{d.Scenario, d.Metric, f(d.Base), f(d.Current), f(d.Rel), d.Direction, string(d.Status)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package polka

import (
	"math/rand"
	"testing"

	"repro/internal/gf2"
)

// TestPortSetRoundTrip drives PortSet and PortsFromSet through a
// table of port lists, checking the encoding and its inverse.
func TestPortSetRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		ports []uint
		mask  uint64
	}{
		{"empty", nil, 0},
		{"single low", []uint{0}, 1},
		{"single high", []uint{63}, 1 << 63},
		{"pair", []uint{1, 3}, 0b1010},
		{"dense run", []uint{0, 1, 2, 3}, 0b1111},
		{"duplicates collapse", []uint{5, 5, 5}, 1 << 5},
		{"unsorted input", []uint{9, 2, 7}, 1<<9 | 1<<2 | 1<<7},
		{"full spread", []uint{0, 15, 31, 47, 62}, 1 | 1<<15 | 1<<31 | 1<<47 | 1<<62},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mask, err := PortSet(c.ports...)
			if err != nil {
				t.Fatal(err)
			}
			if mask != c.mask {
				t.Fatalf("PortSet(%v) = %#b, want %#b", c.ports, mask, c.mask)
			}
			back := PortsFromSet(mask)
			// PortsFromSet returns sorted unique ports.
			uniq := map[uint]bool{}
			for _, p := range c.ports {
				uniq[p] = true
			}
			if len(back) != len(uniq) {
				t.Fatalf("PortsFromSet(%#b) = %v, want %d unique ports", mask, back, len(uniq))
			}
			for i, p := range back {
				if !uniq[p] {
					t.Fatalf("PortsFromSet(%#b) contains unexpected port %d", mask, p)
				}
				if i > 0 && back[i-1] >= p {
					t.Fatalf("PortsFromSet(%#b) = %v not strictly increasing", mask, back)
				}
			}
			// And the mask survives a full round trip.
			again, err := PortSet(back...)
			if err != nil {
				t.Fatal(err)
			}
			if again != mask {
				t.Fatalf("round trip %#b → %v → %#b", mask, back, again)
			}
		})
	}
	if _, err := PortSet(64); err == nil {
		t.Fatal("PortSet(64) accepted, want out-of-range error")
	}
}

// TestOutputPortSetMatchesEncodedSet is the mPolKA data-plane property:
// for random multicast routeIDs over random domains, the port set each
// switch computes from the routeID must equal exactly the set encoded for
// that hop.
func TestOutputPortSetMatchesEncodedSet(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nHops := 2 + rng.Intn(5)
		maxPort := uint64(1 + rng.Intn(8))
		names := make([]string, nHops)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		d, err := NewMultipathDomain(names, maxPort)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hops := make([]MultipathHop, nHops)
		want := make([]uint64, nHops)
		for i, name := range names {
			sw, err := d.Switch(name)
			if err != nil {
				t.Fatal(err)
			}
			// A non-empty random subset of ports 0..maxPort.
			mask := (rng.Uint64() & ((1 << (maxPort + 1)) - 1)) | 1<<rng.Intn(int(maxPort)+1)
			hops[i] = MultipathHop{NodeID: sw.NodeID(), Ports: mask}
			want[i] = mask
		}
		rid, err := ComputeMultipathRouteID(hops)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, name := range names {
			sw, _ := d.Switch(name)
			got, err := PortSet(sw.OutputPortSet(rid)...)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i] {
				t.Fatalf("seed %d hop %s: OutputPortSet gives %#b, encoded %#b", seed, name, got, want[i])
			}
			// The byte-level forwarding path must agree with the
			// polynomial one.
			if fromBytes := sw.OutputPortBytes(RouteIDBytes(rid)); fromBytes != sw.OutputPort(rid) {
				t.Fatalf("seed %d hop %s: OutputPortBytes %#x != OutputPort %#x",
					seed, name, fromBytes, sw.OutputPort(rid))
			}
		}
	}
}

// TestRouteIDBytesRoundTrip pins the wire serialization of route
// identifiers to its inverse.
func TestRouteIDBytesRoundTrip(t *testing.T) {
	polys := []gf2.Poly{
		{},
		gf2.One,
		gf2.FromUint64(0xff),
		gf2.FromUint64(0x100),
		gf2.MustParseBits("10011"),
		gf2.FromWords([]uint64{0xdeadbeefcafebabe, 0x1}),
		gf2.FromWords([]uint64{1, 0, 1}), // 129-bit with interior zero word
	}
	for _, p := range polys {
		b := RouteIDBytes(p)
		if got := RouteIDFromBytes(b); !got.Equal(p) {
			t.Fatalf("round trip %v → %x → %v", p, b, got)
		}
		if len(b) > 0 && b[0] == 0 {
			t.Fatalf("RouteIDBytes(%v) has a leading zero byte: %x", p, b)
		}
	}
}

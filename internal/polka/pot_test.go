package polka

import (
	"errors"
	"testing"

	"repro/internal/gf2"
)

// potDomain uses degree-8+ node identifiers: the chance a transit tag is
// zero (making a skipped hop undetectable for that packet) is 2^-deg, so
// realistic PoT deployments size the polynomials up, as the PoT-PolKA
// paper does.
func potDomain(t *testing.T) *Domain {
	t.Helper()
	d, err := NewDomain([]string{"MIA", "SAO", "CHI", "CAL", "AMS"}, 200)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTransitProofHappyPath(t *testing.T) {
	d := potDomain(t)
	tp, err := NewTransitProof(d, []string{"MIA", "SAO", "AMS"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.Nodes(); len(got) != 3 || got[0] != "MIA" {
		t.Errorf("Nodes = %v", got)
	}
	for trial := 0; trial < 50; trial++ {
		nonce := tp.NewNonce()
		acc, err := tp.WalkAccumulate(nonce)
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.Verify(acc, nonce); err != nil {
			t.Fatalf("trial %d: valid walk rejected: %v", trial, err)
		}
	}
}

func TestTransitProofDetectsSkippedNode(t *testing.T) {
	d := potDomain(t)
	tp, err := NewTransitProof(d, []string{"MIA", "SAO", "CHI", "AMS"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for trial := 0; trial < 50; trial++ {
		nonce := tp.NewNonce()
		// Walk the path but skip SAO.
		var acc gf2.Poly
		for _, name := range []string{"MIA", "CHI", "AMS"} {
			acc, err = tp.Accumulate(acc, name, nonce)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := tp.Verify(acc, nonce); err == nil {
			misses++
		} else if !errors.Is(err, ErrTransitViolation) {
			t.Fatalf("trial %d: wrong error type: %v", trial, err)
		}
	}
	// A skipped node passes only if its tag happens to be zero
	// (probability 2^-deg per trial); 50 trials must catch it.
	if misses > 2 {
		t.Errorf("skipped node went undetected in %d/50 trials", misses)
	}
}

func TestTransitProofDetectsForgedTag(t *testing.T) {
	d := potDomain(t)
	tp, err := NewTransitProof(d, []string{"MIA", "CHI", "AMS"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// An attacker without SAO's... CHI's key guesses tag = N mod s (no key
	// multiplication). That matches only when the key is 1.
	nonce := tp.NewNonce()
	var acc gf2.Poly
	acc, _ = tp.Accumulate(acc, "MIA", nonce)
	// Forge CHI's contribution: add N mod s_CHI via the basis by hand.
	sw, _ := d.Switch("CHI")
	forged := nonce.Mod(sw.NodeID())
	real, _ := tp.NodeTag("CHI", nonce)
	if forged.Equal(real) {
		t.Skip("key happened to be 1; forged tag coincides")
	}
	// Build the forged term through a second proof context... simplest:
	// accumulate correct tags for MIA and AMS only and verify fails at CHI.
	acc2, _ := tp.Accumulate(gf2.Poly{}, "MIA", nonce)
	acc2, _ = tp.Accumulate(acc2, "AMS", nonce)
	err = tp.Verify(acc2, nonce)
	if err == nil {
		t.Error("missing CHI contribution should fail verification")
	}
}

func TestTransitProofValidation(t *testing.T) {
	d := potDomain(t)
	if _, err := NewTransitProof(d, nil, 1); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty path: %v", err)
	}
	if _, err := NewTransitProof(d, []string{"MIA", "MIA"}, 1); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate node: %v", err)
	}
	if _, err := NewTransitProof(d, []string{"nope"}, 1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: %v", err)
	}
	tp, err := NewTransitProof(d, []string{"MIA", "AMS"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	nonce := tp.NewNonce()
	if _, err := tp.NodeTag("CHI", nonce); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("off-path node tag: %v", err)
	}
	if _, err := tp.Accumulate(gf2.Poly{}, "CHI", nonce); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("off-path accumulate: %v", err)
	}
}

func TestTransitProofAccumulatorBounded(t *testing.T) {
	d := potDomain(t)
	tp, err := NewTransitProof(d, []string{"MIA", "SAO", "CHI", "CAL", "AMS"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	nonce := tp.NewNonce()
	acc, err := tp.WalkAccumulate(nonce)
	if err != nil {
		t.Fatal(err)
	}
	// The accumulator stays below the product of the path moduli.
	totalDeg := 0
	for _, name := range tp.Nodes() {
		sw, _ := d.Switch(name)
		totalDeg += sw.NodeID().Degree()
	}
	if acc.Degree() >= totalDeg {
		t.Errorf("accumulator degree %d ≥ modulus product degree %d", acc.Degree(), totalDeg)
	}
}

func BenchmarkTransitProofNodeOp(b *testing.B) {
	d, err := NewDomain([]string{"MIA", "SAO", "CHI", "CAL", "AMS"}, 8)
	if err != nil {
		b.Fatal(err)
	}
	tp, err := NewTransitProof(d, []string{"MIA", "SAO", "CHI", "AMS"}, 7)
	if err != nil {
		b.Fatal(err)
	}
	nonce := tp.NewNonce()
	var acc gf2.Poly
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.Accumulate(acc, "CHI", nonce); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitProofVerify(b *testing.B) {
	d, err := NewDomain([]string{"MIA", "SAO", "CHI", "CAL", "AMS"}, 8)
	if err != nil {
		b.Fatal(err)
	}
	tp, err := NewTransitProof(d, []string{"MIA", "SAO", "CHI", "AMS"}, 7)
	if err != nil {
		b.Fatal(err)
	}
	nonce := tp.NewNonce()
	acc, err := tp.WalkAccumulate(nonce)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tp.Verify(acc, nonce); err != nil {
			b.Fatal(err)
		}
	}
}

package polka

import (
	"encoding/binary"
	"fmt"

	"repro/internal/gf2"
)

// Header is the PolKA packet header: a fixed route identifier plus the
// traffic metadata the framework's policy-based routing matches on. Unlike
// a segment-routing label stack, the header is immutable in transit — core
// nodes only read it.
type Header struct {
	// RouteID is the CRT-encoded route polynomial.
	RouteID gf2.Poly
	// ToS is the IP type-of-service value the edge classifier matched; the
	// testbed experiments use it to distinguish the three TCP flows.
	ToS uint8
	// Proto is the IP protocol number of the encapsulated flow (6 = TCP).
	Proto uint8
}

// headerVersion tags the wire encoding so incompatible changes are
// detectable.
const headerVersion = 1

// Marshal serializes the header to its wire form:
//
//	byte 0      version
//	byte 1      ToS
//	byte 2      Proto
//	bytes 3-4   big-endian length L of the routeID field in bytes
//	bytes 5..   routeID coefficient string, big-endian
func (h Header) Marshal() []byte {
	rid := routeIDBytes(h.RouteID)
	out := make([]byte, 5+len(rid))
	out[0] = headerVersion
	out[1] = h.ToS
	out[2] = h.Proto
	binary.BigEndian.PutUint16(out[3:5], uint16(len(rid)))
	copy(out[5:], rid)
	return out
}

// UnmarshalHeader parses a wire-format header, returning the header and the
// number of bytes consumed.
func UnmarshalHeader(b []byte) (Header, int, error) {
	if len(b) < 5 {
		return Header{}, 0, fmt.Errorf("polka: header too short (%d bytes)", len(b))
	}
	if b[0] != headerVersion {
		return Header{}, 0, fmt.Errorf("polka: unsupported header version %d", b[0])
	}
	l := int(binary.BigEndian.Uint16(b[3:5]))
	if len(b) < 5+l {
		return Header{}, 0, fmt.Errorf("polka: header truncated: routeID needs %d bytes, have %d", l, len(b)-5)
	}
	return Header{
		RouteID: RouteIDFromBytes(b[5 : 5+l]),
		ToS:     b[1],
		Proto:   b[2],
	}, 5 + l, nil
}

// WireSize returns the marshalled size of the header in bytes. It is used
// by the header-overhead comparison against port-switching source routing.
func (h Header) WireSize() int {
	return 5 + len(routeIDBytes(h.RouteID))
}

// RouteIDBits returns the length in bits of the route identifier field,
// i.e. deg(routeID)+1 (0 for an empty route). PolKA's label length is the
// sum of the nodeID degrees along the path and does not grow with the
// number of bits needed to name every hop explicitly.
func (h Header) RouteIDBits() int {
	return h.RouteID.Degree() + 1
}

package polka

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf2"
)

// fig1Domain reproduces the worked example of Fig. 1 in the paper.
func fig1Domain(t *testing.T) *Domain {
	t.Helper()
	d, err := NewDomainWithIDs(map[string]gf2.Poly{
		"s1": gf2.FromUint64(0b11),   // t+1
		"s2": gf2.FromUint64(0b111),  // t^2+t+1
		"s3": gf2.FromUint64(0b1011), // t^3+t+1
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFig1WorkedExample(t *testing.T) {
	d := fig1Domain(t)
	// Output ports o1=1, o2=t (port 2), o3=t^2+t (port 6).
	path := []PathHop{{"s1", 1}, {"s2", 2}, {"s3", 6}}
	routeID, err := d.EncodePath(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyPath(routeID, path); err != nil {
		t.Fatal(err)
	}
	// The paper states routeID 10000 (t^4) yields port 2 at s2.
	s2, err := d.Switch("s2")
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.OutputPort(gf2.MustParseBits("10000")); got != 2 {
		t.Errorf("s2.OutputPort(10000) = %d, want 2", got)
	}
}

func TestRouteIDIsStableAcrossPath(t *testing.T) {
	// The defining property of PolKA vs port switching: one label, never
	// rewritten, yields the right port at every hop.
	d := fig1Domain(t)
	path := []PathHop{{"s1", 1}, {"s2", 2}, {"s3", 5}}
	routeID, err := d.EncodePath(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range path {
		sw, _ := d.Switch(ph.Node)
		if got := sw.OutputPort(routeID); got != ph.Port {
			t.Errorf("switch %s: port %d, want %d", ph.Node, got, ph.Port)
		}
	}
}

func TestComputeRouteIDErrors(t *testing.T) {
	if _, err := ComputeRouteID(nil); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty path: got %v", err)
	}
	s := gf2.FromUint64(0b111) // degree 2: ports must be < 4
	if _, err := ComputeRouteID([]Hop{{NodeID: s, Port: 4}}); !errors.Is(err, ErrPortTooLarge) {
		t.Errorf("oversized port: got %v", err)
	}
	if _, err := ComputeRouteID([]Hop{{NodeID: s, Port: 1}, {NodeID: s, Port: 2}}); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate node: got %v", err)
	}
}

func TestNewDomainAssignsCoprimeIDs(t *testing.T) {
	names := []string{"MIA", "CHI", "CAL", "SAO", "AMS"}
	d, err := NewDomain(names, 12)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Nodes()
	if len(got) != len(names) {
		t.Fatalf("Nodes() = %v", got)
	}
	for i, n := range names {
		if got[i] != n {
			t.Errorf("node %d = %q, want %q (insertion order)", i, got[i], n)
		}
	}
	for i := range names {
		a, _ := d.Switch(names[i])
		if a.NodeID().Degree() < 4 {
			t.Errorf("nodeID %v degree too small for maxPort 12", a.NodeID())
		}
		if !gf2.IsIrreducible(a.NodeID()) {
			t.Errorf("nodeID %v not irreducible", a.NodeID())
		}
		for j := i + 1; j < len(names); j++ {
			b, _ := d.Switch(names[j])
			if a.NodeID().Equal(b.NodeID()) {
				t.Errorf("nodes %s and %s share nodeID %v", names[i], names[j], a.NodeID())
			}
		}
	}
}

func TestNewDomainErrors(t *testing.T) {
	if _, err := NewDomain(nil, 4); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := NewDomain([]string{"a", "a"}, 4); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewDomainWithIDs(nil); err == nil {
		t.Error("empty explicit domain should fail")
	}
	if _, err := NewDomainWithIDs(map[string]gf2.Poly{
		"a": gf2.FromUint64(0b111),
		"b": gf2.FromUint64(0b111),
	}); err == nil {
		t.Error("non-coprime ids should fail")
	}
	if _, err := NewDomainWithIDs(map[string]gf2.Poly{"a": gf2.One}); err == nil {
		t.Error("degree-0 id should fail")
	}
}

func TestDomainUnknownNode(t *testing.T) {
	d := fig1Domain(t)
	if _, err := d.Switch("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("got %v, want ErrUnknownNode", err)
	}
	if _, err := d.EncodePath([]PathHop{{"nope", 1}}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("got %v, want ErrUnknownNode", err)
	}
	if err := d.VerifyPath(gf2.One, []PathHop{{"nope", 1}}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("got %v, want ErrUnknownNode", err)
	}
}

func TestVerifyPathDetectsWrongPort(t *testing.T) {
	d := fig1Domain(t)
	path := []PathHop{{"s1", 1}, {"s2", 2}}
	routeID, err := d.EncodePath(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := []PathHop{{"s1", 1}, {"s2", 3}}
	err = d.VerifyPath(routeID, bad)
	if err == nil || !strings.Contains(err.Error(), "s2") {
		t.Errorf("VerifyPath should name the disagreeing hop, got %v", err)
	}
}

func TestCRCAndNaiveForwardingAgree(t *testing.T) {
	d, err := NewDomain([]string{"a", "b", "c", "d", "e", "f"}, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		routeID := gf2.FromWords([]uint64{rng.Uint64(), rng.Uint64()})
		for _, name := range d.Nodes() {
			sw, _ := d.Switch(name)
			if crc, naive := sw.OutputPort(routeID), sw.OutputPortNaive(routeID); crc != naive {
				t.Fatalf("switch %s: CRC port %d != naive port %d for routeID %v",
					name, crc, naive, routeID)
			}
		}
	}
}

func TestRandomPathsRoundTrip(t *testing.T) {
	names := make([]string, 12)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	d, err := NewDomain(names, 15)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(8)
		perm := rng.Perm(len(names))[:k]
		path := make([]PathHop, k)
		for i, idx := range perm {
			path[i] = PathHop{Node: names[idx], Port: uint64(1 + rng.Intn(15))}
		}
		routeID, err := d.EncodePath(path)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := d.VerifyPath(routeID, path); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestNewSwitchRejectsBadID(t *testing.T) {
	if _, err := NewSwitch("x", gf2.Zero); err == nil {
		t.Error("zero nodeID should fail")
	}
	if _, err := NewSwitch("x", gf2.One); err == nil {
		t.Error("degree-0 nodeID should fail")
	}
}

func TestSwitchAccessors(t *testing.T) {
	id := gf2.FromUint64(0b1011)
	sw, err := NewSwitch("core1", id)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name() != "core1" {
		t.Errorf("Name() = %q", sw.Name())
	}
	if !sw.NodeID().Equal(id) {
		t.Errorf("NodeID() = %v", sw.NodeID())
	}
}

package polka

import (
	"math/rand"
	"testing"

	"repro/internal/gf2"
)

// batchDomain builds a small domain with a few encoded routeIDs for the
// batch-forwarding tests.
func batchDomain(t *testing.T) (*Domain, []gf2.Poly) {
	t.Helper()
	names := []string{"s1", "s2", "s3", "s4", "s5"}
	d, err := NewDomain(names, 9)
	if err != nil {
		t.Fatal(err)
	}
	var rids []gf2.Poly
	for route := 0; route < 4; route++ {
		hops := make([]PathHop, len(names))
		for i, name := range names {
			hops[i] = PathHop{Node: name, Port: uint64((route+i)%5 + 1)}
		}
		rid, err := d.EncodePath(hops)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	return d, rids
}

// TestOutputPortBatchMatchesPerPacket checks that the batch reduction
// returns exactly the per-packet ports for a mixed batch, including the
// memoized run path for consecutive identical routeIDs — whether they
// share a backing array or are equal bytes in distinct allocations.
func TestOutputPortBatchMatchesPerPacket(t *testing.T) {
	d, rids := batchDomain(t)
	sw, err := d.Switch("s3")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	shared := make([][]byte, len(rids))
	for i, rid := range rids {
		shared[i] = RouteIDBytes(rid)
	}
	var batch [][]byte
	for i := 0; i < 200; i++ {
		w := shared[rng.Intn(len(shared))]
		if rng.Intn(3) == 0 {
			// Equal bytes, different backing array: the memoization must
			// fall through to the byte comparison, not miss.
			w = append([]byte(nil), w...)
		}
		batch = append(batch, w)
		// Runs: duplicate the previous routeID a few times.
		for r := rng.Intn(4); r > 0; r-- {
			batch = append(batch, w)
		}
	}
	out := sw.OutputPortBatch(batch, nil)
	if len(out) != len(batch) {
		t.Fatalf("batch returned %d ports for %d routeIDs", len(out), len(batch))
	}
	for i, rid := range batch {
		if want := sw.OutputPortBytes(rid); out[i] != want {
			t.Fatalf("packet %d: batch port %d, per-packet port %d", i, out[i], want)
		}
	}
	// Reusing the scratch buffer must not allocate or change results.
	out2 := sw.OutputPortBatch(batch, out[:0])
	for i := range out2 {
		if out2[i] != out[i] {
			t.Fatalf("scratch reuse diverged at %d", i)
		}
	}
}

// TestTransitProofNonceChange exercises the per-nonce fold cache across
// nonce switches: accumulating and verifying under a second nonce must
// not reuse the first nonce's tags, and returning to the first nonce
// recomputes a correct table.
func TestTransitProofNonceChange(t *testing.T) {
	names := []string{"a", "b", "c"}
	d, err := NewDomain(names, 5)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := NewTransitProof(d, names, 3)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := proof.NewNonce(), proof.NewNonce()
	if n1.Equal(n2) {
		t.Fatal("distinct nonce draws are equal")
	}
	walk := func(nonce gf2.Poly) gf2.Poly {
		acc, err := proof.WalkAccumulate(nonce)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	for cycle, nonce := range []gf2.Poly{n1, n2, n1, n2} {
		acc := walk(nonce)
		if err := proof.Verify(acc, nonce); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	// Cross-check: an accumulator built under one nonce must not verify
	// under the other.
	if err := proof.Verify(walk(n1), n2); err == nil {
		t.Fatal("accumulator for nonce 1 verified under nonce 2")
	}
	// Tags are per-nonce route constants and must differ across nonces.
	tag1, err := proof.NodeTag("b", n1)
	if err != nil {
		t.Fatal(err)
	}
	tag2, err := proof.NodeTag("b", n2)
	if err != nil {
		t.Fatal(err)
	}
	if tag1.Equal(tag2) {
		t.Fatal("node tag identical under both nonces")
	}
}

// TestTransitProofAccumulateOutOfOrder pins the fold cache's slow path:
// an accumulator that does not match the in-order prefix (a replayed or
// misordered packet) still folds correctly via explicit arithmetic.
func TestTransitProofAccumulateOutOfOrder(t *testing.T) {
	names := []string{"a", "b", "c"}
	d, err := NewDomain(names, 5)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := NewTransitProof(d, names, 9)
	if err != nil {
		t.Fatal(err)
	}
	nonce := proof.NewNonce()
	// Fold the nodes in reverse order: no prefix hit anywhere, but the
	// accumulator is order-independent (XOR of per-node terms), so the
	// final value must still verify.
	var acc gf2.Poly
	for i := len(names) - 1; i >= 0; i-- {
		if acc, err = proof.Accumulate(acc, names[i], nonce); err != nil {
			t.Fatal(err)
		}
	}
	if err := proof.Verify(acc, nonce); err != nil {
		t.Fatalf("reverse-order walk failed verification: %v", err)
	}
	if _, err := proof.Accumulate(gf2.Poly{}, "zz", nonce); err == nil {
		t.Fatal("accumulating an off-path node succeeded")
	}
}

// TestOutputPortBatchEmpty covers the degenerate shapes.
func TestOutputPortBatchEmpty(t *testing.T) {
	d, rids := batchDomain(t)
	sw, err := d.Switch("s1")
	if err != nil {
		t.Fatal(err)
	}
	if out := sw.OutputPortBatch(nil, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d ports", len(out))
	}
	one := [][]byte{RouteIDBytes(rids[0])}
	if out := sw.OutputPortBatch(one, nil); len(out) != 1 || out[0] != sw.OutputPortBytes(one[0]) {
		t.Fatalf("single-element batch: got %v", out)
	}
}

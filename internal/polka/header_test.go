package polka

import (
	"math/rand"
	"testing"

	"repro/internal/gf2"
)

func TestHeaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		words := make([]uint64, 1+rng.Intn(3))
		for i := range words {
			words[i] = rng.Uint64()
		}
		h := Header{
			RouteID: gf2.FromWords(words),
			ToS:     uint8(rng.Intn(256)),
			Proto:   6,
		}
		wire := h.Marshal()
		if len(wire) != h.WireSize() {
			t.Fatalf("WireSize %d != marshalled length %d", h.WireSize(), len(wire))
		}
		got, n, err := UnmarshalHeader(wire)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(wire) {
			t.Fatalf("consumed %d bytes, want %d", n, len(wire))
		}
		if !got.RouteID.Equal(h.RouteID) || got.ToS != h.ToS || got.Proto != h.Proto {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestHeaderZeroRouteID(t *testing.T) {
	h := Header{ToS: 4, Proto: 6}
	got, _, err := UnmarshalHeader(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.RouteID.IsZero() {
		t.Errorf("zero routeID round trip: got %v", got.RouteID)
	}
	if h.RouteIDBits() != 0 {
		t.Errorf("RouteIDBits = %d, want 0", h.RouteIDBits())
	}
}

func TestHeaderUnmarshalErrors(t *testing.T) {
	if _, _, err := UnmarshalHeader(nil); err == nil {
		t.Error("nil buffer should fail")
	}
	if _, _, err := UnmarshalHeader([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Error("bad version should fail")
	}
	h := Header{RouteID: gf2.FromCoeffs(40)}
	wire := h.Marshal()
	if _, _, err := UnmarshalHeader(wire[:len(wire)-1]); err == nil {
		t.Error("truncated routeID should fail")
	}
}

func TestHeaderTrailingBytesIgnored(t *testing.T) {
	h := Header{RouteID: gf2.FromUint64(0xABCD), ToS: 8, Proto: 6}
	wire := append(h.Marshal(), 0xFF, 0xFE)
	got, n, err := UnmarshalHeader(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != h.WireSize() {
		t.Errorf("consumed %d, want %d", n, h.WireSize())
	}
	if !got.RouteID.Equal(h.RouteID) {
		t.Errorf("routeID = %v, want %v", got.RouteID, h.RouteID)
	}
}

func TestRouteIDBits(t *testing.T) {
	h := Header{RouteID: gf2.MustParseBits("10000")}
	if got := h.RouteIDBits(); got != 5 {
		t.Errorf("RouteIDBits = %d, want 5", got)
	}
}

package polka

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gf2"
)

func TestPortSet(t *testing.T) {
	m, err := PortSet(0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0b100101 {
		t.Errorf("PortSet(0,2,5) = %#b", m)
	}
	if got := PortsFromSet(m); !reflect.DeepEqual(got, []uint{0, 2, 5}) {
		t.Errorf("PortsFromSet(%#b) = %v", m, got)
	}
	if _, err := PortSet(64); err == nil {
		t.Error("port 64 should fail")
	}
	if got := PortsFromSet(0); len(got) != 0 {
		t.Errorf("PortsFromSet(0) = %v", got)
	}
}

func TestMultipathRouteID(t *testing.T) {
	// Three nodes; the middle one replicates to ports 1 and 3.
	ids := gf2.IrreducibleSequence(5, 3)
	mid, err := PortSet(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	hops := []MultipathHop{
		{NodeID: ids[0], Ports: 1 << 2},
		{NodeID: ids[1], Ports: mid},
		{NodeID: ids[2], Ports: 1 << 1},
	}
	routeID, err := ComputeMultipathRouteID(hops)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hops {
		sw, err := NewSwitch("n", h.NodeID)
		if err != nil {
			t.Fatal(err)
		}
		if got := sw.OutputPort(routeID); got != h.Ports {
			t.Errorf("hop %d: residue %#b, want %#b", i, got, h.Ports)
		}
	}
	// The replication set at the middle node must be {1, 3}.
	sw, _ := NewSwitch("mid", ids[1])
	if got := sw.OutputPortSet(routeID); !reflect.DeepEqual(got, []uint{1, 3}) {
		t.Errorf("OutputPortSet = %v, want [1 3]", got)
	}
}

func TestMultipathRouteIDErrors(t *testing.T) {
	if _, err := ComputeMultipathRouteID(nil); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty: got %v", err)
	}
	id := gf2.FromUint64(0b1011) // degree 3: masks must be < 8
	if _, err := ComputeMultipathRouteID([]MultipathHop{{NodeID: id, Ports: 0b1000}}); !errors.Is(err, ErrPortTooLarge) {
		t.Errorf("oversized mask: got %v", err)
	}
	if _, err := ComputeMultipathRouteID([]MultipathHop{
		{NodeID: id, Ports: 1}, {NodeID: id, Ports: 2},
	}); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate node: got %v", err)
	}
}

func TestMultipathRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ids := gf2.IrreducibleSequence(6, 10)
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(6)
		perm := rng.Perm(len(ids))[:k]
		hops := make([]MultipathHop, k)
		for i, idx := range perm {
			hops[i] = MultipathHop{NodeID: ids[idx], Ports: uint64(1 + rng.Intn(63))}
		}
		routeID, err := ComputeMultipathRouteID(hops)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, h := range hops {
			sw, _ := NewSwitch("n", h.NodeID)
			if got := sw.OutputPort(routeID); got != h.Ports {
				t.Fatalf("trial %d: residue %#b, want %#b", trial, got, h.Ports)
			}
		}
	}
}

func BenchmarkForwardCRC(b *testing.B) {
	d, err := NewDomain([]string{"MIA", "CHI", "AMS", "SAO", "CAL"}, 8)
	if err != nil {
		b.Fatal(err)
	}
	path := []PathHop{{"MIA", 2}, {"CHI", 3}, {"AMS", 1}}
	routeID, err := d.EncodePath(path)
	if err != nil {
		b.Fatal(err)
	}
	sw, _ := d.Switch("CHI")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sw.OutputPort(routeID)
	}
}

func BenchmarkForwardNaive(b *testing.B) {
	d, err := NewDomain([]string{"MIA", "CHI", "AMS", "SAO", "CAL"}, 8)
	if err != nil {
		b.Fatal(err)
	}
	path := []PathHop{{"MIA", 2}, {"CHI", 3}, {"AMS", 1}}
	routeID, err := d.EncodePath(path)
	if err != nil {
		b.Fatal(err)
	}
	sw, _ := d.Switch("CHI")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sw.OutputPortNaive(routeID)
	}
}

func BenchmarkEncodePath5Hops(b *testing.B) {
	names := []string{"a", "b", "c", "d", "e"}
	d, err := NewDomain(names, 8)
	if err != nil {
		b.Fatal(err)
	}
	path := make([]PathHop, len(names))
	for i, n := range names {
		path[i] = PathHop{Node: n, Port: uint64(i + 1)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.EncodePath(path); err != nil {
			b.Fatal(err)
		}
	}
}

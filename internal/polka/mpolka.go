package polka

import (
	"fmt"
	"math/bits"

	"repro/internal/gf2"
)

// M-PolKA (Pereira et al., "mPolKA-INT: stateless multipath source routing
// for in-band network telemetry") generalizes PolKA from a single output
// port per hop to a set of output ports: the residue at a node is read as a
// one-hot bitmask, so a single routeID can encode a multicast/multipath
// tree. The paper lists multipath telemetry as the companion data-plane
// capability of the framework; this file implements the route encoding and
// the set-forwarding operation.

// NewMultipathDomain creates a routing domain sized for M-PolKA: the
// residue at a node is a one-hot port *bitmask*, so node identifiers need
// degree strictly greater than the highest port number (not merely its
// bit length, as in unicast PolKA).
func NewMultipathDomain(nodeNames []string, maxPort uint64) (*Domain, error) {
	if maxPort >= 63 {
		return nil, fmt.Errorf("polka: multipath port %d out of range [0,62]", maxPort)
	}
	// A bitmask with bit maxPort set has degree maxPort, so the nodeID
	// needs degree ≥ maxPort+1; NewDomain sizes by the numeric value, and
	// 1<<maxPort has exactly degree maxPort.
	return NewDomain(nodeNames, 1<<maxPort)
}

// MultipathHop is one node of a multipath route: the packet is replicated
// to every port whose bit is set in Ports.
type MultipathHop struct {
	// NodeID is the node's polynomial identifier.
	NodeID gf2.Poly
	// Ports is the output port set encoded one-hot: bit j means port j.
	// The bitmask, as a polynomial, must have degree < deg(NodeID).
	Ports uint64
}

// PortSet converts a list of port numbers into the one-hot bitmask used by
// MultipathHop. Ports must be < 64.
func PortSet(ports ...uint) (uint64, error) {
	var m uint64
	for _, p := range ports {
		if p >= 64 {
			return 0, fmt.Errorf("polka: multipath port %d out of range [0,63]", p)
		}
		m |= 1 << p
	}
	return m, nil
}

// PortsFromSet expands a one-hot bitmask into the sorted list of port
// numbers it contains.
func PortsFromSet(mask uint64) []uint {
	out := make([]uint, 0, bits.OnesCount64(mask))
	for mask != 0 {
		p := uint(bits.TrailingZeros64(mask))
		out = append(out, p)
		mask &= mask - 1
	}
	return out
}

// ComputeMultipathRouteID computes the M-PolKA route identifier whose
// residue at each hop is that hop's one-hot port set.
func ComputeMultipathRouteID(hops []MultipathHop) (gf2.Poly, error) {
	if len(hops) == 0 {
		return gf2.Poly{}, ErrEmptyPath
	}
	moduli := make([]gf2.Poly, len(hops))
	residues := make([]gf2.Poly, len(hops))
	for i, h := range hops {
		o := gf2.FromUint64(h.Ports)
		if o.Degree() >= h.NodeID.Degree() {
			return gf2.Poly{}, fmt.Errorf("hop %d: %w: port set %#b under nodeID %v",
				i, ErrPortTooLarge, h.Ports, h.NodeID)
		}
		for j := 0; j < i; j++ {
			if hops[j].NodeID.Equal(h.NodeID) {
				return gf2.Poly{}, fmt.Errorf("%w: hop %d repeats nodeID %v", ErrDuplicateNode, i, h.NodeID)
			}
		}
		moduli[i] = h.NodeID
		residues[i] = o
	}
	r, err := gf2.CRT(residues, moduli)
	if err != nil {
		return gf2.Poly{}, fmt.Errorf("polka: multipath routeID computation failed: %w", err)
	}
	return r, nil
}

// OutputPortSet forwards a multipath packet at the switch: the residue of
// the routeID is interpreted as the one-hot set of output ports to
// replicate the packet to.
func (s *Switch) OutputPortSet(routeID gf2.Poly) []uint {
	return PortsFromSet(s.OutputPort(routeID))
}

// Package polka implements the PolKA source-routing architecture
// (Dominicini et al., NetSoft 2020), the path-aware data plane used by the
// paper's integration framework.
//
// PolKA replaces the port-switching label stack of classic segment routing
// with a single fixed label computed in the polynomial residue number
// system: every core node i is assigned an irreducible polynomial nodeID
// s_i(t) over GF(2); a route through nodes s_1..s_k with desired output
// ports o_1..o_k is encoded by the controller as the unique polynomial
// routeID R with
//
//	R ≡ o_i(t)  (mod s_i(t))   for every hop i
//
// via the Chinese Remainder Theorem. A core node forwards by computing
// port = R mod s_i — a stateless mod operation that programmable switches
// can execute on their CRC units — and the label R never changes along the
// path, enabling agile path migration and edge-controlled traffic
// engineering.
package polka

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/gf2"
)

// Common errors returned by route computation and forwarding.
var (
	// ErrUnknownNode is returned when a path references a node that is not
	// part of the domain.
	ErrUnknownNode = errors.New("polka: unknown node")
	// ErrPortTooLarge is returned when a hop's output port does not fit
	// below the degree of the node's identifier polynomial.
	ErrPortTooLarge = errors.New("polka: output port does not fit under nodeID degree")
	// ErrEmptyPath is returned when a route with no hops is requested.
	ErrEmptyPath = errors.New("polka: empty path")
	// ErrDuplicateNode is returned when the same core node appears twice in
	// one path; CRT residues would then conflict.
	ErrDuplicateNode = errors.New("polka: node appears twice in path")
)

// Hop is one core-node traversal of a route: the packet arrives at the node
// with identifier NodeID and must leave through Port.
type Hop struct {
	// NodeID is the node's polynomial identifier (pairwise coprime across
	// the domain; distinct irreducibles in practice).
	NodeID gf2.Poly
	// Port is the output port number; its binary representation is the
	// residue polynomial o(t) and must satisfy deg(o) < deg(NodeID).
	Port uint64
}

// portPoly converts a port number to its residue polynomial, checking that
// it fits under the node identifier.
func portPoly(nodeID gf2.Poly, port uint64) (gf2.Poly, error) {
	p := gf2.FromUint64(port)
	if p.Degree() >= nodeID.Degree() {
		return gf2.Poly{}, fmt.Errorf("%w: port %d needs degree ≥ %d but nodeID %v has degree %d",
			ErrPortTooLarge, port, p.Degree()+1, nodeID, nodeID.Degree())
	}
	return p, nil
}

// ComputeRouteID computes the PolKA route identifier for the ordered hops.
// This is the controller-side operation: the resulting polynomial is
// embedded once in the packet header and is valid for the whole path.
func ComputeRouteID(hops []Hop) (gf2.Poly, error) {
	if len(hops) == 0 {
		return gf2.Poly{}, ErrEmptyPath
	}
	moduli := make([]gf2.Poly, len(hops))
	residues := make([]gf2.Poly, len(hops))
	for i, h := range hops {
		o, err := portPoly(h.NodeID, h.Port)
		if err != nil {
			return gf2.Poly{}, fmt.Errorf("hop %d: %w", i, err)
		}
		for j := 0; j < i; j++ {
			if hops[j].NodeID.Equal(h.NodeID) {
				return gf2.Poly{}, fmt.Errorf("%w: hop %d repeats nodeID %v", ErrDuplicateNode, i, h.NodeID)
			}
		}
		moduli[i] = h.NodeID
		residues[i] = o
	}
	r, err := gf2.CRT(residues, moduli)
	if err != nil {
		return gf2.Poly{}, fmt.Errorf("polka: routeID computation failed: %w", err)
	}
	return r, nil
}

// Switch models a single stateless PolKA core node. Forwarding consults no
// table: the output port is a pure function of the packet's routeID and the
// node's own identifier. The zero value is unusable; create switches with
// NewSwitch.
type Switch struct {
	name    string
	nodeID  gf2.Poly
	reducer *gf2.Reducer // CRC-style reducer when the nodeID degree permits
}

// NewSwitch creates a core node with the given name and polynomial
// identifier. When the identifier's degree is within gf2.MaxReducerDegree
// (always, for realistic nodeIDs) a CRC-table reducer is prepared so the
// forwarding hot path mirrors the hardware implementation.
func NewSwitch(name string, nodeID gf2.Poly) (*Switch, error) {
	if nodeID.Degree() < 1 {
		return nil, fmt.Errorf("polka: nodeID for %q must have degree ≥ 1, got %v", name, nodeID)
	}
	s := &Switch{name: name, nodeID: nodeID}
	if nodeID.Degree() <= gf2.MaxReducerDegree {
		red, err := gf2.NewReducer(nodeID)
		if err != nil {
			return nil, fmt.Errorf("polka: building reducer for %q: %w", name, err)
		}
		s.reducer = red
	}
	return s, nil
}

// Name returns the switch's name.
func (s *Switch) Name() string { return s.name }

// NodeID returns the switch's polynomial identifier.
func (s *Switch) NodeID() gf2.Poly { return s.nodeID }

// OutputPort forwards a packet: it returns routeID mod nodeID as a port
// number, using the CRC-table reducer when available.
func (s *Switch) OutputPort(routeID gf2.Poly) uint64 {
	if s.reducer != nil {
		return s.reducer.ReduceBytes(routeIDBytes(routeID))
	}
	v, _ := routeID.Mod(s.nodeID).Uint64()
	return v
}

// OutputPortNaive forwards using the plain polynomial long division,
// bypassing the CRC table. It exists so benchmarks can compare the two
// data-plane implementations (the paper's "reuse the CRC hardware" claim).
func (s *Switch) OutputPortNaive(routeID gf2.Poly) uint64 {
	v, _ := routeID.Mod(s.nodeID).Uint64()
	return v
}

// OutputPortBytes forwards a packet directly from the big-endian routeID
// field of its header, exactly as a switch CRC unit consumes it — no
// polynomial value is materialized on the hot path. It is the forwarding
// primitive the packet-level dataplane engine uses.
func (s *Switch) OutputPortBytes(routeID []byte) uint64 {
	if s.reducer != nil {
		return s.reducer.ReduceBytes(routeID)
	}
	v, _ := RouteIDFromBytes(routeID).Mod(s.nodeID).Uint64()
	return v
}

// OutputPortBatch forwards a whole ingress batch: it appends each
// routeID's output port to out and returns the extended slice (pass
// out[:0] to reuse a scratch buffer allocation-free). Runs of consecutive
// identical routeIDs — the common case, since all packets of a flow are
// stamped from one route and queue back-to-back — are reduced once and
// replayed, which amortizes the CRC setup across the batch.
func (s *Switch) OutputPortBatch(routeIDs [][]byte, out []uint64) []uint64 {
	var last []byte
	var port uint64
	have := false
	for _, rid := range routeIDs {
		if !have || !sameRouteID(last, rid) {
			port = s.OutputPortBytes(rid)
			last, have = rid, true
		}
		out = append(out, port)
	}
	return out
}

// sameRouteID reports whether two wire routeIDs are the same, in O(1) when
// they share a backing array (Route.NewPacket stamps one slice onto every
// packet of a route) and by byte comparison otherwise.
func sameRouteID(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	return bytes.Equal(a, b)
}

// Domain is a PolKA routing domain: a set of named core nodes with pairwise
// coprime polynomial identifiers and the CRT machinery to encode routes
// across them. A Domain is safe for concurrent use.
type Domain struct {
	mu       sync.RWMutex
	switches map[string]*Switch
	order    []string // insertion order, for deterministic iteration
}

// NewDomain creates a routing domain assigning each named node a distinct
// irreducible polynomial of degree at least minDegree(maxPort), where
// maxPort is the highest output port number any node will use. Node names
// must be unique.
func NewDomain(nodeNames []string, maxPort uint64) (*Domain, error) {
	if len(nodeNames) == 0 {
		return nil, errors.New("polka: domain needs at least one node")
	}
	// The port residue o(t) must satisfy deg(o) < deg(s). A port value p
	// has degree bits.Len(p)-1, so the nodeID degree must be at least
	// bits.Len(maxPort). Keep a floor of 3 so small domains still get
	// nontrivial identifiers.
	minDeg := 3
	if d := gf2.FromUint64(maxPort).Degree() + 1; d > minDeg {
		minDeg = d
	}
	ids := gf2.IrreducibleSequence(minDeg, len(nodeNames))
	d := &Domain{switches: make(map[string]*Switch, len(nodeNames))}
	for i, name := range nodeNames {
		if _, dup := d.switches[name]; dup {
			return nil, fmt.Errorf("polka: duplicate node name %q", name)
		}
		sw, err := NewSwitch(name, ids[i])
		if err != nil {
			return nil, err
		}
		d.switches[name] = sw
		d.order = append(d.order, name)
	}
	return d, nil
}

// NewDomainWithIDs creates a domain from explicit name → nodeID
// assignments, validating that the identifiers are pairwise coprime. It is
// used to reproduce published examples (e.g. Fig. 1 of the paper) exactly.
func NewDomainWithIDs(assignments map[string]gf2.Poly) (*Domain, error) {
	if len(assignments) == 0 {
		return nil, errors.New("polka: domain needs at least one node")
	}
	names := make([]string, 0, len(assignments))
	for name := range assignments {
		names = append(names, name)
	}
	sort.Strings(names)
	d := &Domain{switches: make(map[string]*Switch, len(names))}
	for _, name := range names {
		sw, err := NewSwitch(name, assignments[name])
		if err != nil {
			return nil, err
		}
		d.switches[name] = sw
		d.order = append(d.order, name)
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			a, b := assignments[names[i]], assignments[names[j]]
			if !gf2.GCD(a, b).Equal(gf2.One) {
				return nil, fmt.Errorf("polka: nodeIDs for %q (%v) and %q (%v) are not coprime",
					names[i], a, names[j], b)
			}
		}
	}
	return d, nil
}

// Switch returns the named core node, or ErrUnknownNode.
func (d *Domain) Switch(name string) (*Switch, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	sw, ok := d.switches[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return sw, nil
}

// Nodes returns the node names in insertion order.
func (d *Domain) Nodes() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// PathHop names a node and the output port the packet must take there.
type PathHop struct {
	Node string
	Port uint64
}

// EncodePath computes the routeID for an ordered list of (node, port) hops.
func (d *Domain) EncodePath(path []PathHop) (gf2.Poly, error) {
	hops := make([]Hop, len(path))
	for i, ph := range path {
		sw, err := d.Switch(ph.Node)
		if err != nil {
			return gf2.Poly{}, fmt.Errorf("hop %d: %w", i, err)
		}
		hops[i] = Hop{NodeID: sw.NodeID(), Port: ph.Port}
	}
	return ComputeRouteID(hops)
}

// VerifyPath walks the path hop by hop, forwarding with each switch's data
// plane, and reports the first hop whose computed output port disagrees
// with the requested one. A nil error means the routeID steers the packet
// exactly along the requested path.
func (d *Domain) VerifyPath(routeID gf2.Poly, path []PathHop) error {
	for i, ph := range path {
		sw, err := d.Switch(ph.Node)
		if err != nil {
			return fmt.Errorf("hop %d: %w", i, err)
		}
		if got := sw.OutputPort(routeID); got != ph.Port {
			return fmt.Errorf("polka: hop %d (%s): routeID forwards to port %d, want %d",
				i, ph.Node, got, ph.Port)
		}
	}
	return nil
}

// routeIDBytes renders the routeID as the big-endian byte string a packet
// header would carry.
func routeIDBytes(p gf2.Poly) []byte { return gf2.ToBigEndianBytes(p) }

// RouteIDBytes renders a route identifier as the big-endian coefficient
// byte string a packet header carries on the wire (nil for the zero
// polynomial). It is the serialization Switch.OutputPortBytes consumes.
func RouteIDBytes(p gf2.Poly) []byte { return gf2.ToBigEndianBytes(p) }

// RouteIDFromBytes rebuilds the route polynomial from its big-endian wire
// bytes; it inverts RouteIDBytes.
func RouteIDFromBytes(b []byte) gf2.Poly { return gf2.FromBigEndianBytes(b) }

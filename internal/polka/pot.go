package polka

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gf2"
)

// Proof of Transit (PoT-PolKA, Borges et al., IEEE TNSM 2024 — reference
// [18] of the paper): the edge verifies that a packet actually traversed
// every node of its programmed path, using the same polynomial residue
// system that forwards it.
//
// Each node of a path holds a secret key polynomial k_i with
// deg(k_i) < deg(s_i). The ingress stamps the packet with a fresh nonce
// polynomial N. At every hop, node i computes its transit tag
//
//	tag_i = (N mod s_i) · k_i mod s_i
//
// and folds it into the packet's accumulator through its CRT basis
// element: acc ← acc + tag_i·b_i (mod M), where b_i ≡ 1 (mod s_i) and
// b_i ≡ 0 (mod s_j), j≠i. Because the basis elements are orthogonal, the
// egress — which knows all keys — can verify acc ≡ tag_i (mod s_i) for
// every i: a hop that was skipped (or a tag forged without the key)
// leaves the wrong residue with overwhelming probability. Like the
// original scheme, the accumulator proves the *set* of traversed nodes;
// ordering is enforced by the forwarding itself.

// ErrTransitViolation is returned when a proof does not verify.
var ErrTransitViolation = errors.New("polka: proof of transit verification failed")

// TransitProof is the per-path proof-of-transit context shared by the
// ingress (nonce stamping), the nodes (tag computation) and the egress
// (verification).
type TransitProof struct {
	nodes    []string
	moduli   []gf2.Poly
	keys     map[string]gf2.Poly
	basis    *gf2.CRTBasis
	nonceDeg int
	rng      *rand.Rand
}

// NewTransitProof builds the PoT context for an ordered node path within
// the domain. Keys are drawn from the seeded generator — in a deployment
// they would be provisioned out of band by the controller, exactly as the
// routeIDs are.
func NewTransitProof(d *Domain, path []string, seed int64) (*TransitProof, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	rng := rand.New(rand.NewSource(seed))
	moduli := make([]gf2.Poly, len(path))
	keys := make(map[string]gf2.Poly, len(path))
	totalDeg := 0
	for i, name := range path {
		sw, err := d.Switch(name)
		if err != nil {
			return nil, err
		}
		if _, dup := keys[name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, name)
		}
		moduli[i] = sw.NodeID()
		totalDeg += sw.NodeID().Degree()
		// Secret key: a uniformly random nonzero residue mod s_i.
		deg := sw.NodeID().Degree()
		var k gf2.Poly
		for k.IsZero() {
			k = gf2.FromUint64(rng.Uint64() & ((1 << deg) - 1))
		}
		keys[name] = k
	}
	basis, err := gf2.NewCRTBasis(moduli)
	if err != nil {
		return nil, err
	}
	nodes := make([]string, len(path))
	copy(nodes, path)
	return &TransitProof{
		nodes: nodes, moduli: moduli, keys: keys, basis: basis,
		nonceDeg: totalDeg, rng: rng,
	}, nil
}

// Nodes returns the protected path.
func (t *TransitProof) Nodes() []string {
	out := make([]string, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// NewNonce draws a fresh per-packet nonce polynomial.
func (t *TransitProof) NewNonce() gf2.Poly {
	words := make([]uint64, (t.nonceDeg+63)/64)
	for i := range words {
		words[i] = t.rng.Uint64()
	}
	return gf2.FromWords(words)
}

// nodeIndex locates a node on the path.
func (t *TransitProof) nodeIndex(name string) (int, error) {
	for i, n := range t.nodes {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q not on the protected path", ErrUnknownNode, name)
}

// NodeTag computes the transit tag node name contributes for the nonce —
// the in-switch operation (two CRC-style mod reductions and one carry-less
// multiply).
func (t *TransitProof) NodeTag(name string, nonce gf2.Poly) (gf2.Poly, error) {
	i, err := t.nodeIndex(name)
	if err != nil {
		return gf2.Poly{}, err
	}
	s := t.moduli[i]
	return nonce.Mod(s).Mul(t.keys[name]).Mod(s), nil
}

// Accumulate folds a node's tag into the packet accumulator (the
// operation executed at each hop).
func (t *TransitProof) Accumulate(acc gf2.Poly, name string, nonce gf2.Poly) (gf2.Poly, error) {
	i, err := t.nodeIndex(name)
	if err != nil {
		return gf2.Poly{}, err
	}
	tag, err := t.NodeTag(name, nonce)
	if err != nil {
		return gf2.Poly{}, err
	}
	// Solve-by-basis: tag_i·b_i has residue tag_i at s_i and 0 elsewhere.
	residues := make([]gf2.Poly, len(t.nodes))
	residues[i] = tag
	term, err := t.basis.Solve(residues)
	if err != nil {
		return gf2.Poly{}, err
	}
	return acc.Add(term).Mod(t.basis.Product()), nil
}

// WalkAccumulate simulates the full path traversal: every node folds its
// tag in, in order, and the final accumulator is returned.
func (t *TransitProof) WalkAccumulate(nonce gf2.Poly) (gf2.Poly, error) {
	var acc gf2.Poly
	var err error
	for _, name := range t.nodes {
		acc, err = t.Accumulate(acc, name, nonce)
		if err != nil {
			return gf2.Poly{}, err
		}
	}
	return acc, nil
}

// Verify is the egress check: the accumulator must carry every node's tag
// in its residue. It returns ErrTransitViolation (wrapped with the first
// offending node) on mismatch.
func (t *TransitProof) Verify(acc, nonce gf2.Poly) error {
	for i, name := range t.nodes {
		want, err := t.NodeTag(name, nonce)
		if err != nil {
			return err
		}
		if got := acc.Mod(t.moduli[i]); !got.Equal(want) {
			return fmt.Errorf("%w: node %s residue %v, want %v", ErrTransitViolation, name, got, want)
		}
	}
	return nil
}

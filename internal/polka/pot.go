package polka

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/gf2"
)

// Proof of Transit (PoT-PolKA, Borges et al., IEEE TNSM 2024 — reference
// [18] of the paper): the edge verifies that a packet actually traversed
// every node of its programmed path, using the same polynomial residue
// system that forwards it.
//
// Each node of a path holds a secret key polynomial k_i with
// deg(k_i) < deg(s_i). The ingress stamps the packet with a fresh nonce
// polynomial N. At every hop, node i computes its transit tag
//
//	tag_i = (N mod s_i) · k_i mod s_i
//
// and folds it into the packet's accumulator through its CRT basis
// element: acc ← acc + tag_i·b_i (mod M), where b_i ≡ 1 (mod s_i) and
// b_i ≡ 0 (mod s_j), j≠i. Because the basis elements are orthogonal, the
// egress — which knows all keys — can verify acc ≡ tag_i (mod s_i) for
// every i: a hop that was skipped (or a tag forged without the key)
// leaves the wrong residue with overwhelming probability. Like the
// original scheme, the accumulator proves the *set* of traversed nodes;
// ordering is enforced by the forwarding itself.

// ErrTransitViolation is returned when a proof does not verify.
var ErrTransitViolation = errors.New("polka: proof of transit verification failed")

// TransitProof is the per-path proof-of-transit context shared by the
// ingress (nonce stamping), the nodes (tag computation) and the egress
// (verification).
type TransitProof struct {
	nodes    []string
	moduli   []gf2.Poly
	keys     map[string]gf2.Poly
	basis    *gf2.CRTBasis
	nonceDeg int
	rng      *rand.Rand
	// index maps node name → path position, replacing the per-hop linear
	// scan of nodes.
	index map[string]int
	// reducers holds one CRC-table reducer per modulus (nil where the
	// degree exceeds gf2.MaxReducerDegree), so residues on the forwarding
	// hot path avoid polynomial long division.
	reducers []*gf2.Reducer
	// fold caches the per-nonce tag/term table. All packets of a route
	// share one nonce, so after the first hop every Accumulate and Verify
	// is a table lookup. Swapped atomically: recomputation under a racing
	// nonce change is idempotent (Poly values are immutable).
	fold atomic.Pointer[potFold]
}

// potFold is the memoized per-nonce transit state: for each path node i,
// its tag tag_i = (N mod s_i)·k_i mod s_i, the accumulator increment
// term_i = tag_i·b_i mod M it folds in at that hop, and the prefix
// accumulator an in-order traversal carries after hop i. Packets walking
// the path in encoded order (every packet, absent misrouting) hit the
// prefix table and fold without allocating.
type potFold struct {
	nonce  gf2.Poly
	tags   []gf2.Poly
	terms  []gf2.Poly
	prefix []gf2.Poly
}

// NewTransitProof builds the PoT context for an ordered node path within
// the domain. Keys are drawn from the seeded generator — in a deployment
// they would be provisioned out of band by the controller, exactly as the
// routeIDs are.
func NewTransitProof(d *Domain, path []string, seed int64) (*TransitProof, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	rng := rand.New(rand.NewSource(seed))
	moduli := make([]gf2.Poly, len(path))
	keys := make(map[string]gf2.Poly, len(path))
	totalDeg := 0
	for i, name := range path {
		sw, err := d.Switch(name)
		if err != nil {
			return nil, err
		}
		if _, dup := keys[name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, name)
		}
		moduli[i] = sw.NodeID()
		totalDeg += sw.NodeID().Degree()
		// Secret key: a uniformly random nonzero residue mod s_i.
		deg := sw.NodeID().Degree()
		var k gf2.Poly
		for k.IsZero() {
			k = gf2.FromUint64(rng.Uint64() & ((1 << deg) - 1))
		}
		keys[name] = k
	}
	basis, err := gf2.NewCRTBasis(moduli)
	if err != nil {
		return nil, err
	}
	nodes := make([]string, len(path))
	copy(nodes, path)
	index := make(map[string]int, len(nodes))
	reducers := make([]*gf2.Reducer, len(nodes))
	for i, name := range nodes {
		index[name] = i
		if moduli[i].Degree() <= gf2.MaxReducerDegree {
			if r, err := gf2.NewReducer(moduli[i]); err == nil {
				reducers[i] = r
			}
		}
	}
	return &TransitProof{
		nodes: nodes, moduli: moduli, keys: keys, basis: basis,
		nonceDeg: totalDeg, rng: rng, index: index, reducers: reducers,
	}, nil
}

// Nodes returns the protected path.
func (t *TransitProof) Nodes() []string {
	out := make([]string, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// NewNonce draws a fresh per-packet nonce polynomial.
func (t *TransitProof) NewNonce() gf2.Poly {
	words := make([]uint64, (t.nonceDeg+63)/64)
	for i := range words {
		words[i] = t.rng.Uint64()
	}
	return gf2.FromWords(words)
}

// nodeIndex locates a node on the path.
func (t *TransitProof) nodeIndex(name string) (int, error) {
	if i, ok := t.index[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("%w: %q not on the protected path", ErrUnknownNode, name)
}

// foldFor returns the per-nonce tag/term table, computing and caching it on
// first use. Concurrent callers may race to compute the same table; the
// computation is pure, so last-store-wins is harmless.
func (t *TransitProof) foldFor(nonce gf2.Poly) *potFold {
	if f := t.fold.Load(); f != nil && f.nonce.Equal(nonce) {
		return f
	}
	f := &potFold{
		nonce:  nonce,
		tags:   make([]gf2.Poly, len(t.nodes)),
		terms:  make([]gf2.Poly, len(t.nodes)),
		prefix: make([]gf2.Poly, len(t.nodes)),
	}
	product := t.basis.Product()
	var acc gf2.Poly
	for i, name := range t.nodes {
		s := t.moduli[i]
		var tag gf2.Poly
		if r := t.reducers[i]; r != nil {
			nres := gf2.FromUint64(r.ReducePoly(nonce))
			tag = gf2.FromUint64(r.ReducePoly(nres.Mul(t.keys[name])))
		} else {
			tag = nonce.Mod(s).Mul(t.keys[name]).Mod(s)
		}
		f.tags[i] = tag
		// tag_i·b_i has residue tag_i at s_i and 0 elsewhere.
		f.terms[i] = tag.Mul(t.basis.Basis(i)).Mod(product)
		acc = acc.Add(f.terms[i])
		f.prefix[i] = acc
	}
	t.fold.Store(f)
	return f
}

// NodeTag computes the transit tag node name contributes for the nonce —
// the in-switch operation (two CRC-style mod reductions and one carry-less
// multiply). Tags are route constants per nonce, so repeated calls hit the
// memoized fold table.
func (t *TransitProof) NodeTag(name string, nonce gf2.Poly) (gf2.Poly, error) {
	i, err := t.nodeIndex(name)
	if err != nil {
		return gf2.Poly{}, err
	}
	return t.foldFor(nonce).tags[i], nil
}

// Accumulate folds a node's tag into the packet accumulator (the
// operation executed at each hop). With the fold table warm this is one
// XOR of polynomials already reduced below deg(M).
func (t *TransitProof) Accumulate(acc gf2.Poly, name string, nonce gf2.Poly) (gf2.Poly, error) {
	i, err := t.nodeIndex(name)
	if err != nil {
		return gf2.Poly{}, err
	}
	f := t.foldFor(nonce)
	// In-order traversal fast path: the accumulator arriving at hop i of
	// an unmolested walk is exactly prefix[i-1] (zero at the ingress), so
	// the folded result is the shared prefix[i] — no arithmetic at all.
	if i == 0 {
		if acc.IsZero() {
			return f.prefix[0], nil
		}
	} else if acc.Equal(f.prefix[i-1]) {
		return f.prefix[i], nil
	}
	sum := acc.Add(f.terms[i])
	// Both operands carry degree < deg(M) on the engine path; the guard
	// covers callers feeding an unreduced accumulator.
	if sum.Degree() >= t.basis.Product().Degree() {
		sum = sum.Mod(t.basis.Product())
	}
	return sum, nil
}

// WalkAccumulate simulates the full path traversal: every node folds its
// tag in, in order, and the final accumulator is returned.
func (t *TransitProof) WalkAccumulate(nonce gf2.Poly) (gf2.Poly, error) {
	var acc gf2.Poly
	var err error
	for _, name := range t.nodes {
		acc, err = t.Accumulate(acc, name, nonce)
		if err != nil {
			return gf2.Poly{}, err
		}
	}
	return acc, nil
}

// Verify is the egress check: the accumulator must carry every node's tag
// in its residue. It returns ErrTransitViolation (wrapped with the first
// offending node) on mismatch.
func (t *TransitProof) Verify(acc, nonce gf2.Poly) error {
	f := t.foldFor(nonce)
	for i, name := range t.nodes {
		if r := t.reducers[i]; r != nil {
			// Tags fit in a word (modulus degree ≤ 56), so the residue
			// check is a table reduction and an integer compare.
			want, _ := f.tags[i].Uint64()
			if got := r.ReducePoly(acc); got != want {
				return fmt.Errorf("%w: node %s residue %v, want %v",
					ErrTransitViolation, name, gf2.FromUint64(got), f.tags[i])
			}
			continue
		}
		if got := acc.Mod(t.moduli[i]); !got.Equal(f.tags[i]) {
			return fmt.Errorf("%w: node %s residue %v, want %v", ErrTransitViolation, name, got, f.tags[i])
		}
	}
	return nil
}

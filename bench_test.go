// Package repro's root benchmark harness: one benchmark per table/figure
// of the paper's evaluation (Section V), ablations of the design choices,
// and throughput benchmarks for the packet-level data plane
// (internal/dataplane). Run everything with
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute the same experiment drivers as the CLIs
// (cmd/mlcompare, cmd/labdemo, cmd/dataplanedemo), so each timed iteration
// regenerates the corresponding artifact end to end. See README.md for the
// module layout and how each benchmark maps onto the paper.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/gf2"
	"repro/internal/hecate"
	"repro/internal/link"
	"repro/internal/ml"
	"repro/internal/polka"
	"repro/internal/rl"
	"repro/internal/srbase"
	"repro/internal/topo"
)

// benchTestbedConfig keeps the emulated experiments short enough to time.
func benchTestbedConfig() experiments.TestbedConfig {
	return experiments.TestbedConfig{
		Model:             "LR",
		Phase1Sec:         20,
		Phase2Sec:         20,
		SampleIntervalSec: 1,
		WarmupSec:         30,
	}
}

// BenchmarkFig1Forwarding times the Fig. 1 worked example's data-plane
// operation: one PolKA mod-forwarding decision at node s2.
func BenchmarkFig1Forwarding(b *testing.B) {
	d, err := polka.NewDomainWithIDs(map[string]gf2.Poly{
		"s1": gf2.FromUint64(0b11),
		"s2": gf2.FromUint64(0b111),
		"s3": gf2.FromUint64(0b1011),
	})
	if err != nil {
		b.Fatal(err)
	}
	rid, err := d.EncodePath([]polka.PathHop{{Node: "s1", Port: 1}, {Node: "s2", Port: 2}, {Node: "s3", Port: 6}})
	if err != nil {
		b.Fatal(err)
	}
	s2, _ := d.Switch("s2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s2.OutputPort(rid) != 2 {
			b.Fatal("wrong port")
		}
	}
}

// BenchmarkFig5bDatasetGeneration times synthesizing the 500 s two-path
// UQ-like trace.
func BenchmarkFig5bDatasetGeneration(b *testing.B) {
	cfg := dataset.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := dataset.Generate(cfg)
		if tr.Len() != 500 {
			b.Fatal("bad trace")
		}
	}
}

// BenchmarkFig6RegressorSweep times the full 18-model RMSE comparison on
// both paths — the whole Fig. 6 regeneration.
func BenchmarkFig6RegressorSweep(b *testing.B) {
	cfg := experiments.DefaultMLConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMLComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 18 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkFig7RandomForestPredict times the Fig. 7 artifact: Random
// Forest fitted and evaluated on both paths.
func BenchmarkFig7RandomForestPredict(b *testing.B) {
	cfg := experiments.DefaultMLConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunObservedVsPredicted("RFR", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8GaussianProcessPredict times the Fig. 8 artifact: the
// (pathological) Gaussian Process fitted and evaluated on both paths.
func BenchmarkFig8GaussianProcessPredict(b *testing.B) {
	cfg := experiments.DefaultMLConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunObservedVsPredicted("GPR", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11LatencyMigration times testbed experiment 1 end to end:
// framework bring-up, training, pinned phase, optimizer consultation, PBR
// migration, and probing.
func BenchmarkFig11LatencyMigration(b *testing.B) {
	cfg := benchTestbedConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLatencyMigration(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.ToTunnel != 2 {
			b.Fatalf("migration landed on tunnel %d", res.ToTunnel)
		}
	}
}

// BenchmarkFig12FlowAggregation times testbed experiment 2 end to end.
func BenchmarkFig12FlowAggregation(b *testing.B) {
	cfg := benchTestbedConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFlowAggregation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Phase2MeanTotal < 30 {
			b.Fatalf("aggregate only reached %v Mbps", res.Phase2MeanTotal)
		}
	}
}

// BenchmarkMinMaxOptimizer times the Section III flow-model solvers on the
// Fig. 2 two-path instance.
func BenchmarkMinMaxOptimizer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hecate.MinMaxSplit(15, 20, 10); err != nil {
			b.Fatal(err)
		}
		if _, err := hecate.MinDelaySplit(8, 10, 10); err != nil {
			b.Fatal(err)
		}
		if _, err := hecate.LinearCostSplit(8, 10, 10, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationRouteIDCRT times route computation from scratch for a
// 5-hop path, versus the precomputed-basis variant below — the PolKA
// controller's cost to provision a tunnel.
func BenchmarkAblationRouteIDCRT(b *testing.B) {
	moduli := gf2.IrreducibleSequence(4, 5)
	residues := make([]gf2.Poly, len(moduli))
	for i := range residues {
		residues[i] = gf2.FromUint64(uint64(i + 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gf2.CRT(residues, moduli); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRouteIDCRTBasis amortizes the CRT basis across route
// computations sharing the same core nodes.
func BenchmarkAblationRouteIDCRTBasis(b *testing.B) {
	moduli := gf2.IrreducibleSequence(4, 5)
	basis, err := gf2.NewCRTBasis(moduli)
	if err != nil {
		b.Fatal(err)
	}
	residues := make([]gf2.Poly, len(moduli))
	for i := range residues {
		residues[i] = gf2.FromUint64(uint64(i + 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := basis.Solve(residues); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPolkaVsPortSwitching compares the two data planes on
// the same 4-router tunnel: per-packet forwarding across the whole path.
// PolKA reads one immutable label; port switching pops a label per hop.
func BenchmarkAblationPolkaVsPortSwitching(b *testing.B) {
	lab, err := topo.BuildGlobalP4Lab(topo.DefaultGlobalP4LabConfig())
	if err != nil {
		b.Fatal(err)
	}
	routers := append(lab.NodesOfKind(topo.Edge), lab.NodesOfKind(topo.Core)...)
	domain, err := polka.NewDomain(routers, lab.MaxPort())
	if err != nil {
		b.Fatal(err)
	}
	path := topo.TunnelPath3()
	ports, err := lab.PortsAlong(path)
	if err != nil {
		b.Fatal(err)
	}
	// Router-only hops (skip the host's virtual egress).
	var hops []polka.PathHop
	ports16 := make([]uint16, 0, len(ports))
	for i := 0; i+1 < len(path.Nodes); i++ {
		n, _ := lab.Node(path.Nodes[i])
		if n.Kind == topo.Host {
			continue
		}
		hops = append(hops, polka.PathHop{Node: path.Nodes[i], Port: ports[i]})
		ports16 = append(ports16, uint16(ports[i]))
	}
	rid, err := domain.EncodePath(hops)
	if err != nil {
		b.Fatal(err)
	}
	stack, err := srbase.NewLabelStack(ports16)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("polka", func(b *testing.B) {
		switches := make([]*polka.Switch, len(hops))
		for i, h := range hops {
			sw, err := domain.Switch(h.Node)
			if err != nil {
				b.Fatal(err)
			}
			switches[i] = sw
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, sw := range switches {
				if sw.OutputPort(rid) != hops[j].Port {
					b.Fatal("wrong port")
				}
			}
		}
	})
	b.Run("portswitching", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := stack.Clone()
			for j := range ports16 {
				p, err := c.Pop()
				if err != nil || p != ports16[j] {
					b.Fatal("wrong pop")
				}
			}
		}
	})
	b.Run("headerbytes", func(b *testing.B) {
		// Not a timing comparison: report the wire sizes as custom metrics.
		hdr := polka.Header{RouteID: rid, ToS: 4, Proto: 6}
		b.ReportMetric(float64(hdr.WireSize()), "polka-bytes")
		b.ReportMetric(float64(stack.WireSize()), "stack-bytes")
		for i := 0; i < b.N; i++ {
			_ = hdr.WireSize()
		}
	})
}

// BenchmarkAblationReactiveVsPredictive compares the Section III
// "current-QoS" heuristic with the 10-step predictive recommendation on
// the UQ trace, timing a decision of each kind.
func BenchmarkAblationReactiveVsPredictive(b *testing.B) {
	tr := dataset.Generate(dataset.DefaultConfig())
	wifi, lte := tr.WiFi.Values(), tr.LTE.Values()
	split := dataset.SplitIndex(tr.Len(), 0.75)
	opt, err := hecate.New(hecate.Config{Lag: 10, Horizon: 10, Model: "RFR"})
	if err != nil {
		b.Fatal(err)
	}
	if err := opt.TrainPath("wifi", wifi[:split]); err != nil {
		b.Fatal(err)
	}
	if err := opt.TrainPath("lte", lte[:split]); err != nil {
		b.Fatal(err)
	}
	histories := map[string][]float64{
		"wifi": wifi[split : split+10],
		"lte":  lte[split : split+10],
	}
	b.Run("reactive", func(b *testing.B) {
		current := map[string]float64{"wifi": wifi[split+9], "lte": lte[split+9]}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := hecate.ReactiveBest(current, hecate.MaxBandwidth); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("predictive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opt.Recommend(histories, hecate.MaxBandwidth); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHorizon compares 1-step versus 10-step recommendation
// cost (the prediction-horizon ablation of the Hecate optimizer).
func BenchmarkAblationHorizon(b *testing.B) {
	tr := dataset.Generate(dataset.DefaultConfig())
	wifi, lte := tr.WiFi.Values(), tr.LTE.Values()
	split := dataset.SplitIndex(tr.Len(), 0.75)
	for _, horizon := range []int{1, 10} {
		horizon := horizon
		b.Run(map[int]string{1: "h1", 10: "h10"}[horizon], func(b *testing.B) {
			opt, err := hecate.New(hecate.Config{Lag: 10, Horizon: horizon, Model: "RFR"})
			if err != nil {
				b.Fatal(err)
			}
			if err := opt.TrainPath("wifi", wifi[:split]); err != nil {
				b.Fatal(err)
			}
			if err := opt.TrainPath("lte", lte[:split]); err != nil {
				b.Fatal(err)
			}
			histories := map[string][]float64{
				"wifi": wifi[split : split+10],
				"lte":  lte[split : split+10],
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Recommend(histories, hecate.MaxBandwidth); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationModelChoice times a single end-to-end recommendation
// under three representative Hecate models: the deployed forest, the
// boosted trees, and plain linear regression.
func BenchmarkAblationModelChoice(b *testing.B) {
	tr := dataset.Generate(dataset.DefaultConfig())
	wifi, lte := tr.WiFi.Values(), tr.LTE.Values()
	split := dataset.SplitIndex(tr.Len(), 0.75)
	for _, model := range []string{"RFR", "GBR", "LR"} {
		model := model
		b.Run(model, func(b *testing.B) {
			opt, err := hecate.New(hecate.Config{Lag: 10, Horizon: 10, Model: model})
			if err != nil {
				b.Fatal(err)
			}
			if err := opt.TrainPath("wifi", wifi[:split]); err != nil {
				b.Fatal(err)
			}
			if err := opt.TrainPath("lte", lte[:split]); err != nil {
				b.Fatal(err)
			}
			histories := map[string][]float64{
				"wifi": wifi[split : split+10],
				"lte":  lte[split : split+10],
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Recommend(histories, hecate.MaxBandwidth); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTrainingCost times fitting one path model for the
// deployed forest versus the linear fallback — the control-plane cost of
// the model choice.
func BenchmarkAblationTrainingCost(b *testing.B) {
	tr := dataset.Generate(dataset.DefaultConfig())
	wifi := tr.WiFi.Values()
	split := dataset.SplitIndex(tr.Len(), 0.75)
	for _, model := range []string{"RFR", "LR"} {
		model := model
		b.Run(model, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt, err := hecate.New(hecate.Config{Lag: 10, Horizon: 10, Model: model})
				if err != nil {
					b.Fatal(err)
				}
				if err := opt.TrainPath("wifi", wifi[:split]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMLPipeline times one full EvaluateOnSeries pass (scale, window,
// fit, predict, inverse, score) for the two models the paper plots.
func BenchmarkMLPipeline(b *testing.B) {
	tr := dataset.Generate(dataset.DefaultConfig())
	wifi := tr.WiFi.Values()
	cfg := ml.DefaultPipelineConfig()
	for _, name := range []string{"RFR", "LR"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec, err := ml.ModelByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ml.EvaluateOnSeries(spec.New(), wifi, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAllocators compares three flow allocators on an
// identical 5-flow workload over the lab tunnels: the trained Q-learning
// policy (the paper's future-work direction), the reactive greedy
// heuristic, and random placement. Each iteration plays one full
// evaluation episode; the achieved totals are reported as custom metrics.
func BenchmarkAblationAllocators(b *testing.B) {
	env, err := rl.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	caps := env.Capacities()
	agent, err := rl.NewAgent([]int{1, 2, 3}, rl.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Train(agent, 80); err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		choose rl.Chooser
	}{
		{"qlearning", rl.PolicyChooser(agent, caps)},
		{"greedy", rl.GreedyChooser()},
		{"random", rl.RandomChooser([]int{1, 2, 3}, 99)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var total float64
			for i := 0; i < b.N; i++ {
				t, _, err := env.Evaluate(c.choose)
				if err != nil {
					b.Fatal(err)
				}
				total = t
			}
			b.ReportMetric(total, "total-mbps")
		})
	}
}

// BenchmarkAblationWorkloadPolicies times one 300 s soak per placement
// policy and reports the carried load as a custom metric — the
// introduction's "run networks hotter" claim quantified.
func BenchmarkAblationWorkloadPolicies(b *testing.B) {
	for _, policy := range []experiments.WorkloadPolicy{
		experiments.PolicyStatic, experiments.PolicyRandom,
		experiments.PolicyReactive, experiments.PolicyPredictive,
	} {
		policy := policy
		b.Run(string(policy), func(b *testing.B) {
			cfg := experiments.DefaultWorkloadConfig(policy)
			cfg.DurationSec = 300
			b.ReportAllocs()
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunWorkload(cfg)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanTotalMbps
			}
			b.ReportMetric(mean, "carried-mbps")
		})
	}
}

// --- Packet-level data plane (internal/dataplane) -------------------------

// newLabPacketEngine builds a packet engine over the Global P4 Lab with the
// three tunnel routes encoded, for the throughput benchmarks.
func newLabPacketEngine(b *testing.B, workers int) (*dataplane.Engine, []*dataplane.Route) {
	b.Helper()
	lab, err := topo.BuildGlobalP4Lab(topo.DefaultGlobalP4LabConfig())
	if err != nil {
		b.Fatal(err)
	}
	routers := append(lab.NodesOfKind(topo.Edge), lab.NodesOfKind(topo.Core)...)
	domain, err := polka.NewDomain(routers, lab.MaxPort())
	if err != nil {
		b.Fatal(err)
	}
	engine, err := dataplane.New(lab, dataplane.Config{Domain: domain, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	var routes []*dataplane.Route
	for _, tun := range []topo.Path{topo.TunnelPath1(), topo.TunnelPath2(), topo.TunnelPath3()} {
		r, err := engine.UnicastRoute(tun)
		if err != nil {
			b.Fatal(err)
		}
		routes = append(routes, r)
	}
	return engine, routes
}

// BenchmarkDataplaneForwarding measures end-to-end packet forwarding
// throughput on the lab topology: each iteration injects a batch across the
// three tunnels and drains the engine, serially and sharded over the
// available cores. The pkts/s metric counts delivered packets; hops/s
// counts forwarding decisions. One untimed warm-up iteration grows the
// engine's pooled round state, so the timed loop measures the steady
// state — which must stay at zero allocations per op (the gobench CI gate
// pins allocs_per_op with zero tolerance).
func BenchmarkDataplaneForwarding(b *testing.B) {
	const batch = 1024
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.NumCPU()), runtime.NumCPU()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			engine, routes := newLabPacketEngine(b, mode.workers)
			bufs := make([][]dataplane.Packet, len(routes))
			iter := func() (dataplane.Stats, error) {
				for ri, r := range routes {
					bufs[ri] = r.AppendPackets(bufs[ri][:0], batch/len(routes), 1500)
					if err := engine.InjectBatch(r.Inject, bufs[ri]); err != nil {
						return dataplane.Stats{}, err
					}
				}
				stats, err := engine.Run(context.Background())
				engine.Reset()
				return stats, err
			}
			if _, err := iter(); err != nil {
				b.Fatal(err)
			}
			var delivered, hops uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := iter()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Dropped() != 0 {
					b.Fatalf("dropped %d packets", stats.Dropped())
				}
				delivered += stats.Delivered
				hops += stats.Hops
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(delivered)/s, "pkts/s")
				b.ReportMetric(float64(hops)/s, "hops/s")
			}
		})
	}
}

// BenchmarkDataplaneTableVsNaive compares the two forwarding
// implementations on identical routeIDs along a 10-hop path with degree-8
// node identifiers: the table-driven CRC reduction consuming the wire bytes
// (the hardware model) versus plain polynomial long division. The paper's
// claim is that the former makes per-hop forwarding essentially free on
// switch CRC units; the measured speedup is the tracked number.
func BenchmarkDataplaneTableVsNaive(b *testing.B) {
	const hops = 10
	names := make([]string, hops)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	// maxPort 200 forces degree-8 identifiers, giving a ~80-bit routeID.
	domain, err := polka.NewDomain(names, 200)
	if err != nil {
		b.Fatal(err)
	}
	path := make([]polka.PathHop, hops)
	for i := range path {
		path[i] = polka.PathHop{Node: names[i], Port: uint64(i%5 + 1)}
	}
	rid, err := domain.EncodePath(path)
	if err != nil {
		b.Fatal(err)
	}
	ridBytes := polka.RouteIDBytes(rid)
	switches := make([]*polka.Switch, hops)
	for i, name := range names {
		sw, err := domain.Switch(name)
		if err != nil {
			b.Fatal(err)
		}
		switches[i] = sw
	}
	b.Run("table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, sw := range switches {
				if sw.OutputPortBytes(ridBytes) != path[j].Port {
					b.Fatal("wrong port")
				}
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, sw := range switches {
				if sw.OutputPortNaive(rid) != path[j].Port {
					b.Fatal("wrong port")
				}
			}
		}
	})
}

// BenchmarkDataplaneModes measures per-mode forwarding cost on the lab:
// unicast and multicast are pure CRC work, while proof-of-transit adds the
// per-hop tag fold and the egress verification.
func BenchmarkDataplaneModes(b *testing.B) {
	const batch = 256
	lab, err := topo.BuildGlobalP4Lab(topo.DefaultGlobalP4LabConfig())
	if err != nil {
		b.Fatal(err)
	}
	routers := append(lab.NodesOfKind(topo.Edge), lab.NodesOfKind(topo.Core)...)
	domain, err := polka.NewMultipathDomain(routers, lab.MaxPort())
	if err != nil {
		b.Fatal(err)
	}
	engine, err := dataplane.New(lab, dataplane.Config{Domain: domain})
	if err != nil {
		b.Fatal(err)
	}
	uni, err := engine.UnicastRoute(topo.TunnelPath1())
	if err != nil {
		b.Fatal(err)
	}
	pot, err := engine.PoTRoute(topo.TunnelPath1(), 1)
	if err != nil {
		b.Fatal(err)
	}
	mia, err := lab.Node(topo.MIA)
	if err != nil {
		b.Fatal(err)
	}
	sao, err := lab.Node(topo.SAO)
	if err != nil {
		b.Fatal(err)
	}
	ams, err := lab.Node(topo.AMS)
	if err != nil {
		b.Fatal(err)
	}
	miaOut, _ := mia.Port(topo.SAO)
	saoOut, _ := sao.Port(topo.AMS)
	amsOut, _ := ams.Port(topo.HostAMS)
	mc, err := engine.MulticastRoute(topo.MIA, map[string]uint64{
		topo.MIA: 1 << miaOut,
		topo.SAO: 1 << saoOut,
		topo.AMS: 1 << amsOut,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name  string
		route *dataplane.Route
	}{{"unicast", uni}, {"multicast", mc}, {"pot", pot}} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var delivered uint64
			for i := 0; i < b.N; i++ {
				if err := engine.InjectBatch(c.route.Inject, c.route.NewPackets(batch, 1500)); err != nil {
					b.Fatal(err)
				}
				stats, err := engine.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if stats.Delivered == 0 || stats.Dropped() != 0 {
					b.Fatalf("delivered %d dropped %d", stats.Delivered, stats.Dropped())
				}
				delivered += stats.Delivered
				engine.Reset()
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(delivered)/s, "pkts/s")
			}
		})
	}
}

// BenchmarkLinkFullPath measures the full link tier's per-frame cost: the
// Send path (loss draw, queue pruning, serialization arithmetic, heap
// push) plus the arrival pop, on a modeled wire with every feature turned
// on. The pkts/s metric is frames through the link per second; the steady
// state must stay allocation-free so the dataplane's full mode doesn't
// pay per-hop garbage.
func BenchmarkLinkFullPath(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  link.FullConfig
	}{
		{"transparent", link.FullConfig{RateMbps: -1, DelayMs: -1}},
		{"modeled", link.FullConfig{RateMbps: 1000, DelayMs: 5, QueuePkts: 256,
			Loss: link.Bernoulli(0.01), ReorderProb: 0.05, ReorderWindowMs: 1, Seed: 1}},
	} {
		b.Run(c.name, func(b *testing.B) {
			p := link.NewFullPath(c.cfg)
			var buf []link.Frame
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := link.Time(i) * 12_000 // 1500 B at 1 Gbps
				p.Send(now, link.Frame{Seq: uint64(i), Size: 1500})
				buf = p.Recv(now, buf[:0])
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "pkts/s")
			}
		})
	}
}

// BenchmarkDataplaneLinkTiers compares end-to-end engine throughput across
// the link tiers on the lab's three tunnels: the fast tier's direct
// handoff, the full tier with transparent links (the event loop's
// bookkeeping overhead, nothing modeled), and the full tier with the
// topology's real rates and delays.
func BenchmarkDataplaneLinkTiers(b *testing.B) {
	const batch = 1024
	for _, tier := range []struct {
		name string
		cfg  dataplane.Config
	}{
		{"fast", dataplane.Config{}},
		{"full-transparent", dataplane.Config{LinkMode: dataplane.LinkFull,
			Link: link.FullConfig{RateMbps: -1, DelayMs: -1}}},
		{"full-modeled", dataplane.Config{LinkMode: dataplane.LinkFull, Seed: 1}},
	} {
		b.Run(tier.name, func(b *testing.B) {
			lab, err := topo.BuildGlobalP4Lab(topo.DefaultGlobalP4LabConfig())
			if err != nil {
				b.Fatal(err)
			}
			routers := append(lab.NodesOfKind(topo.Edge), lab.NodesOfKind(topo.Core)...)
			domain, err := polka.NewDomain(routers, lab.MaxPort())
			if err != nil {
				b.Fatal(err)
			}
			cfg := tier.cfg
			cfg.Domain = domain
			engine, err := dataplane.New(lab, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var routes []*dataplane.Route
			for _, tun := range []topo.Path{topo.TunnelPath1(), topo.TunnelPath2(), topo.TunnelPath3()} {
				r, err := engine.UnicastRoute(tun)
				if err != nil {
					b.Fatal(err)
				}
				routes = append(routes, r)
			}
			var delivered uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range routes {
					if err := engine.InjectBatch(r.Inject, r.NewPackets(batch/len(routes), 1500)); err != nil {
						b.Fatal(err)
					}
				}
				stats, err := engine.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if stats.Dropped() != 0 {
					b.Fatalf("dropped %d packets", stats.Dropped())
				}
				delivered += stats.Delivered
				engine.Reset()
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(delivered)/s, "pkts/s")
			}
		})
	}
}

// BenchmarkLinkTransfer times the window-based transport moving 1 MiB
// over a modeled wire — the unit of work behind every throttlesweep cell.
func BenchmarkLinkTransfer(b *testing.B) {
	b.ReportAllocs()
	var segs uint64
	for i := 0; i < b.N; i++ {
		data := link.NewFullPath(link.FullConfig{RateMbps: 16, DelayMs: 10, QueuePkts: 64,
			Loss: link.Bernoulli(0.01), Seed: 1})
		ack := link.NewFullPath(link.FullConfig{RateMbps: 16, DelayMs: 10, Seed: 2})
		res, err := link.RunTransfer(context.Background(), data, ack, link.TransferConfig{Bytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if res.Aborted {
			b.Fatalf("aborted: %s", res.AbortReason)
		}
		segs += res.Segments
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(segs)/s, "segs/s")
	}
}
